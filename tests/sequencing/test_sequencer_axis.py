"""The sequencer= axis through run_policy, cross_validate, batch, CLI."""

import pytest

from repro.backends import BatchRunner, cross_validate, make_campaign_instances
from repro.cli import main
from repro.core import Instance, run_policy
from repro.exceptions import SequencingError
from repro.generators import bag_instance, sample_job_bag
from repro.io import save_instance


@pytest.fixture
def inst() -> Instance:
    return Instance.from_percent([[80, 20, 60], [40, 90, 10]])


class TestRunPolicyAxis:
    def test_none_keeps_fixed_order(self, inst):
        plain = run_policy(inst, "greedy-balance")
        axis = run_policy(inst, "greedy-balance", sequencer=None)
        assert plain.makespan == axis.makespan

    def test_result_carries_the_sequenced_instance(self, inst):
        result = run_policy(inst, "greedy-balance", sequencer="requirement-desc")
        assert result.instance.same_bag(inst)
        for queue in result.instance.queues:
            reqs = [job.requirement for job in queue]
            assert reqs == sorted(reqs, reverse=True)

    def test_accepts_sequencer_objects(self, inst):
        from repro.sequencing import SPTOrder

        by_name = run_policy(inst, "greedy-balance", sequencer="spt")
        by_object = run_policy(inst, "greedy-balance", sequencer=SPTOrder())
        assert by_name.makespan == by_object.makespan

    def test_unknown_sequencer_raises(self, inst):
        with pytest.raises(SequencingError):
            run_policy(inst, "greedy-balance", sequencer="bogus")


class TestCrossValidateAxis:
    @pytest.mark.parametrize("name", ["spt", "lpt", "greedy-placement"])
    def test_backends_agree_on_sequenced_instances(self, name):
        for seed in range(6):
            inst = bag_instance(4, 5, seed=seed)
            check = cross_validate(inst, "greedy-balance", sequencer=name)
            assert check.ok, (name, seed)


class TestBatchAxis:
    def test_sequencer_none_matches_legacy_rows(self):
        instances = make_campaign_instances(5, 3, 4, seed=0)
        legacy = BatchRunner(workers=1).run(instances)
        axis = BatchRunner(workers=1, sequencer=None).run(instances)
        assert legacy.makespans == axis.makespans

    def test_fixed_sequencer_bit_identical_rows(self):
        instances = make_campaign_instances(5, 3, 4, seed=0)
        legacy = BatchRunner(workers=1).run(instances)
        fixed = BatchRunner(workers=1, sequencer="fixed").run(instances)
        assert legacy.makespans == fixed.makespans

    def test_local_search_never_worse_on_makespan(self):
        instances = make_campaign_instances(4, 3, 4, family="bag", seed=2)
        fixed = BatchRunner(workers=1).run(instances)
        tuned = BatchRunner(
            workers=1,
            sequencer="local-search",
            sequencer_options={"budget": 40, "seed": 1},
        ).run(instances)
        for f, t in zip(fixed.makespans, tuned.makespans):
            assert t <= f

    def test_summary_reports_the_sequencer(self):
        instances = make_campaign_instances(2, 3, 4, seed=0)
        result = BatchRunner(workers=1, sequencer="spt").run(instances)
        assert result.summary()["sequencer"] == "spt"

    def test_unknown_sequencer_fails_fast(self):
        with pytest.raises(SequencingError):
            BatchRunner(sequencer="bogus")


class TestBagGenerators:
    def test_sample_job_bag_is_seeded(self):
        assert sample_job_bag(6, seed=3) == sample_job_bag(6, seed=3)
        assert sample_job_bag(6, seed=3) != sample_job_bag(6, seed=4)

    def test_bag_instance_deals_round_robin(self):
        bag = sample_job_bag(12, seed=5)
        inst = bag_instance(3, 4, seed=5)
        assert inst == Instance.from_bag(bag, 3)

    def test_bag_family_in_campaigns(self):
        instances = make_campaign_instances(3, 4, 5, family="bag", seed=1)
        assert all(i.total_jobs == 20 for i in instances)


class TestCLI:
    def test_run_with_sequencer_flag(self, tmp_path, capsys, inst):
        path = tmp_path / "inst.json"
        save_instance(inst, path)
        assert main(["run", str(path), "--sequencer", "requirement-desc"]) == 0
        out = capsys.readouterr().out
        assert "sequencer: requirement-desc" in out

    def test_run_with_local_search_budget(self, tmp_path, capsys, inst):
        path = tmp_path / "inst.json"
        save_instance(inst, path)
        code = main(
            [
                "run",
                str(path),
                "--sequencer",
                "local-search",
                "--search-budget",
                "20",
                "--backend",
                "vector",
            ]
        )
        assert code == 0
        assert "sequencer: local-search" in capsys.readouterr().out

    def test_svg_title_carries_the_sequencer_label(self, tmp_path, inst):
        path = tmp_path / "inst.json"
        svg = tmp_path / "gantt.svg"
        save_instance(inst, path)
        assert (
            main(
                [
                    "run",
                    str(path),
                    "--sequencer",
                    "spt",
                    "--svg",
                    str(svg),
                ]
            )
            == 0
        )
        assert "order: spt" in svg.read_text()

    def test_list_shows_sequencer_section(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "sequencers (" in out
        assert "local-search" in out

    def test_crosscheck_with_sequencer(self, capsys):
        code = main(
            [
                "crosscheck",
                "--count",
                "3",
                "--m",
                "3",
                "--n",
                "4",
                "--sequencer",
                "spt",
            ]
        )
        assert code == 0
        assert "sequencer=spt" in capsys.readouterr().out

    def test_batch_with_sequencer(self, capsys):
        code = main(
            [
                "batch",
                "--count",
                "4",
                "--m",
                "3",
                "--n",
                "4",
                "--family",
                "bag",
                "--workers",
                "1",
                "--sequencer",
                "greedy-placement",
            ]
        )
        assert code == 0
        assert "sequencer: greedy-placement" in capsys.readouterr().out


class TestOrderExperiment:
    def test_order_experiment_verdict(self):
        from repro.experiments import get_experiment
        from repro.experiments.runner import run_experiment

        result = run_experiment(
            get_experiment("ORDER"),
            seeds=(0, 1),
            budget=100,
        )
        assert result.verdict is True
        gadget_rows = [
            row
            for row in result.rows
            if row["family"] == "gadget-yes"
            and row["sequencer"] == "local-search"
        ]
        assert gadget_rows and gadget_rows[0]["mean_gap"] > 0
