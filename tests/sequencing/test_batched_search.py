"""Batched neighborhood evaluation and memoization in local search."""

import pytest

from repro.core import run_policy
from repro.exceptions import SequencingError
from repro.generators import bag_instance
from repro.sequencing import LocalSearchSequencer
from repro.telemetry import TelemetrySession, use_session


def _inst(seed=0):
    return bag_instance(4, 4, seed=seed)


class TestBatchedClimb:
    def test_batched_search_is_deterministic(self):
        inst = _inst()
        a = LocalSearchSequencer(budget=40, seed=3, batch_lanes=8)
        b = LocalSearchSequencer(budget=40, seed=3, batch_lanes=8)
        assert a.sequence(inst) == b.sequence(inst)
        assert a.last_stats["best"] == b.last_stats["best"]

    def test_batched_search_never_returns_a_worse_order(self):
        inst = _inst(1)
        seq = LocalSearchSequencer(budget=48, seed=0, batch_lanes=16)
        improved = seq.sequence(inst)
        before = run_policy(inst, "greedy-balance").makespan
        after = run_policy(improved, "greedy-balance").makespan
        assert after <= before
        assert seq.last_stats["best"] <= seq.last_stats["initial"]

    def test_batched_respects_budget(self):
        seq = LocalSearchSequencer(
            budget=30, restarts=2, seed=0, batch_lanes=7
        )
        seq.sequence(_inst(2))
        assert seq.last_stats["evaluations"] <= 30 * 2 + 1

    def test_batched_preserves_bag_and_releases(self):
        inst = _inst(3)
        improved = LocalSearchSequencer(
            budget=32, seed=1, batch_lanes=8
        ).sequence(inst)
        assert inst.same_bag(improved)
        assert improved.releases == inst.releases

    def test_invalid_batch_lanes_rejected(self):
        with pytest.raises(SequencingError, match="batch_lanes"):
            LocalSearchSequencer(batch_lanes=0)


class TestMemoization:
    def test_cache_hits_are_counted(self):
        # A tiny neighborhood (m=2, n=2) revisits orders quickly, so a
        # generous budget must produce cache hits.
        inst = bag_instance(2, 2, seed=0)
        seq = LocalSearchSequencer(budget=60, seed=0)
        seq.sequence(inst)
        stats = seq.last_stats
        assert stats["cache_hits"] > 0
        assert (
            stats["cache_hits"] + stats["kernel_runs"]
            == stats["evaluations"]
        )

    def test_batched_search_shares_the_cache(self):
        inst = bag_instance(2, 2, seed=0)
        seq = LocalSearchSequencer(budget=60, seed=0, batch_lanes=8)
        seq.sequence(inst)
        stats = seq.last_stats
        assert stats["cache_hits"] > 0
        assert (
            stats["cache_hits"] + stats["kernel_runs"]
            == stats["evaluations"]
        )

    def test_cache_does_not_change_the_search(self):
        # The memoized value must equal a fresh evaluation's, so the
        # sequential trajectory (pinned by seeds) stays identical to
        # the pre-cache implementation: same result, same stats.
        inst = _inst(4)
        seq = LocalSearchSequencer(budget=50, seed=7)
        improved = seq.sequence(inst)
        again = LocalSearchSequencer(budget=50, seed=7).sequence(inst)
        assert improved == again

    def test_stats_expose_batch_lanes(self):
        seq = LocalSearchSequencer(budget=8, seed=0, batch_lanes=4)
        seq.sequence(_inst())
        assert seq.last_stats["batch_lanes"] == 4
        single = LocalSearchSequencer(budget=8, seed=0)
        single.sequence(_inst())
        assert single.last_stats["batch_lanes"] == 1


class TestTelemetry:
    def test_sequencer_span_carries_cache_figures(self):
        inst = bag_instance(2, 2, seed=0)
        with use_session(TelemetrySession()) as session:
            seq = LocalSearchSequencer(budget=40, seed=0, batch_lanes=8)
            seq.sequence(inst)
        (span,) = [
            r
            for r in session.tracer.records
            if r.name == "sequencer.search"
        ]
        assert span.attrs["cache_hits"] == seq.last_stats["cache_hits"]
        assert span.attrs["kernel_runs"] == seq.last_stats["kernel_runs"]
        assert span.attrs["batch_lanes"] == 8
        assert (
            session.metrics.counter("sequencer.cache_hits").value
            == seq.last_stats["cache_hits"]
        )
