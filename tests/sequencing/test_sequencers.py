"""Sequencer registry and static ordering/placement strategies."""

import pytest

from repro.core import Instance, Job
from repro.exceptions import SequencingError
from repro.sequencing import (
    FixedOrder,
    GreedyPlacement,
    Sequencer,
    available_sequencers,
    get_sequencer,
    resolve_sequencer,
)


@pytest.fixture
def inst() -> Instance:
    return Instance([["1/4", "3/4", "1/2"], ["9/10", "1/10"]])


class TestRegistry:
    def test_all_strategies_registered(self):
        assert available_sequencers() == sorted(
            [
                "fixed",
                "spt",
                "lpt",
                "requirement-desc",
                "slack",
                "greedy-placement",
                "local-search",
                "optimal",
            ]
        )

    def test_get_sequencer_unknown_name(self):
        with pytest.raises(SequencingError) as err:
            get_sequencer("no-such-strategy")
        assert "fixed" in str(err.value)

    def test_get_sequencer_forwards_options(self):
        seq = get_sequencer("local-search", budget=7, seed=3)
        assert seq.budget == 7 and seq.seed == 3

    def test_resolve_passes_objects_through(self):
        seq = FixedOrder()
        assert resolve_sequencer(seq) is seq
        assert isinstance(resolve_sequencer("fixed"), FixedOrder)


@pytest.mark.parametrize("name", sorted(set(available_sequencers())))
class TestSequencerContract:
    def test_preserves_bag_and_releases(self, name, inst):
        staggered = inst.with_releases([0, 2])
        out = get_sequencer(name).sequence(staggered)
        assert staggered.same_bag(out)
        assert out.releases == (0, 2)

    def test_place_builds_instance_from_bag(self, name):
        bag = [Job("1/2"), Job("1/4"), Job("3/4"), Job("1/8")]
        out = get_sequencer(name).place(bag, 2)
        assert out.num_processors == 2
        assert out.total_jobs == 4
        assert Instance.from_bag(bag, 2).same_bag(out)


class TestFixedOrder:
    def test_identity_returns_same_object(self, inst):
        assert FixedOrder().sequence(inst) is inst


class TestStaticOrders:
    def test_spt_sorts_each_queue_by_work_ascending(self, inst):
        out = get_sequencer("spt").sequence(inst)
        for queue in out.queues:
            works = [job.work for job in queue]
            assert works == sorted(works)

    def test_lpt_sorts_each_queue_by_work_descending(self, inst):
        out = get_sequencer("lpt").sequence(inst)
        for queue in out.queues:
            works = [job.work for job in queue]
            assert works == sorted(works, reverse=True)

    def test_spt_orders_general_sizes_by_work_not_requirement(self):
        # A small-requirement long job can carry more work than a
        # large-requirement short one; SPT must order by r*p.
        inst = Instance([[Job("1/10", 8), Job("3/4", 1)]])
        out = get_sequencer("spt").sequence(inst)
        assert out.job(0, 0).requirement == Job("3/4").requirement

    def test_requirement_desc_puts_hungry_jobs_first(self, inst):
        out = get_sequencer("requirement-desc").sequence(inst)
        for queue in out.queues:
            reqs = [job.requirement for job in queue]
            assert reqs == sorted(reqs, reverse=True)

    def test_slack_orders_by_deadline_none_last(self):
        inst = Instance(
            [[Job("1/2"), Job("1/2", deadline=2), Job("1/2", deadline=9)]]
        )
        out = get_sequencer("slack").sequence(inst)
        assert [j.deadline for j in out.queues[0]] == [2, 9, None]

    def test_static_orders_are_idempotent(self, inst):
        for name in ("spt", "lpt", "requirement-desc", "slack"):
            once = get_sequencer(name).sequence(inst)
            twice = get_sequencer(name).sequence(once)
            assert once == twice, name


class TestGreedyPlacement:
    def test_balances_job_counts_for_unit_bags(self):
        bag = [Job("1/2") for _ in range(9)]
        out = GreedyPlacement().place(bag, 3)
        assert sorted(len(q) for q in out.queues) == [3, 3, 3]

    def test_big_jobs_spread_across_queues(self):
        bag = [Job("1/2", 4), Job("1/2", 4), Job("1/2", 1), Job("1/2", 1)]
        out = GreedyPlacement().place(bag, 2)
        sizes = sorted(
            sorted(float(j.size) for j in q) for q in out.queues
        )
        assert sizes == [[1.0, 4.0], [1.0, 4.0]]

    def test_sequence_may_move_jobs_between_queues(self):
        lopsided = Instance([["1/2", "1/2", "1/2", "1/2", "1/2"], ["1/2"]])
        out = GreedyPlacement().sequence(lopsided)
        assert lopsided.same_bag(out)
        assert max(len(q) for q in out.queues) == 3

    def test_no_queue_left_empty_under_late_release(self):
        bag = [Job("1/2"), Job("1/2"), Job("1/2")]
        out = GreedyPlacement().place(bag, 2, releases=[0, 1000])
        assert all(len(q) >= 1 for q in out.queues)

    def test_rejects_underfull_bag(self):
        from repro.exceptions import InvalidInstanceError

        with pytest.raises(InvalidInstanceError):
            GreedyPlacement().place([Job("1/2")], 2)


class TestProtocol:
    def test_custom_sequencer_subclasses_protocol(self, inst):
        class ReverseAll(Sequencer):
            name = "reverse-all"

            def sequence(self, instance):
                return instance.with_order(
                    [
                        list(reversed(range(len(q))))
                        for q in instance.queues
                    ]
                )

        out = ReverseAll().sequence(inst)
        assert inst.same_bag(out)
        assert out.job(0, 0).requirement == inst.job(0, 2).requirement
