"""Partial-evaluation prefix cache of the local-search sequencer.

The cache resumes candidate evaluations from
:class:`~repro.core.checkpoint.KernelCheckpoint` snapshots taken along
the incumbent's run, so it must be a pure optimization: the search
trajectory (every order visited, every acceptance) with the cache on
is pinned bit-identical to the cache-off run.
"""

import pytest

from repro.exceptions import SequencingError
from repro.generators import (
    bag_instance,
    multi_resource_instance,
    uniform_instance,
    with_arrivals,
    with_deadlines,
    with_weights,
)
from repro.sequencing import LocalSearchSequencer
from repro.telemetry import TelemetrySession, use_session


def _annotated(seed=3):
    inst = uniform_instance(4, 6, seed=seed)
    inst = with_arrivals(inst, max_release=3, seed=seed + 1)
    inst = with_weights(inst, profile="skewed", seed=seed + 2)
    return with_deadlines(inst, profile="mixed", seed=seed + 3)


def _pair(**kwargs):
    on = LocalSearchSequencer(prefix_cache=True, **kwargs)
    off = LocalSearchSequencer(prefix_cache=False, **kwargs)
    return on, off


class TestTrajectoryIdentity:
    """Cache on vs off: same orders, same values, same decisions."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_same_result_and_decisions(self, seed):
        inst = bag_instance(4, 4, seed=seed)
        on, off = _pair(budget=60, restarts=2, seed=seed)
        assert on.sequence(inst) == off.sequence(inst)
        for key in ("initial", "best", "evaluations", "accepted",
                    "rejected", "cache_hits", "kernel_runs"):
            assert on.last_stats[key] == off.last_stats[key], key
        assert on.last_stats["prefix_hits"] > 0
        assert off.last_stats["prefix_hits"] == 0

    def test_same_result_with_annotations(self):
        # Arrivals, weights and deadlines all ride in the checkpoint
        # state; a mismatch would push the trajectories apart.
        inst = _annotated()
        on, off = _pair(
            budget=80, restarts=3, seed=1, objective="weighted-flow"
        )
        assert on.sequence(inst) == off.sequence(inst)
        assert on.last_stats["best"] == off.last_stats["best"]
        assert on.last_stats["prefix_hits"] > 0

    def test_multi_resource_instances(self):
        inst = multi_resource_instance(3, 5, 2, seed=11)
        on, off = _pair(budget=40, restarts=2, seed=4)
        assert on.sequence(inst) == off.sequence(inst)
        assert on.last_stats["best"] == off.last_stats["best"]

    def test_accounting_identity_still_holds(self):
        # Promotion re-runs are bookkeeping, not evaluations: the
        # pinned identity cache_hits + kernel_runs == evaluations
        # survives with the cache active.
        inst = bag_instance(2, 2, seed=0)
        seq = LocalSearchSequencer(budget=60, seed=0, prefix_cache=True)
        seq.sequence(inst)
        stats = seq.last_stats
        assert (
            stats["cache_hits"] + stats["kernel_runs"]
            == stats["evaluations"]
        )


class TestActivation:
    def test_auto_enables_on_the_sequential_vector_path(self):
        seq = LocalSearchSequencer(budget=40, seed=0)
        seq.sequence(bag_instance(3, 3, seed=5))
        assert seq.last_stats["prefix_hits"] > 0

    def test_auto_disables_on_the_exact_backend(self):
        seq = LocalSearchSequencer(budget=12, seed=0, backend="exact")
        seq.sequence(bag_instance(2, 2, seed=5))
        assert seq.last_stats["prefix_hits"] == 0

    def test_auto_disables_on_the_batched_climb(self):
        seq = LocalSearchSequencer(budget=24, seed=0, batch_lanes=4)
        seq.sequence(bag_instance(3, 3, seed=5))
        assert seq.last_stats["prefix_hits"] == 0

    def test_forcing_on_with_exact_backend_raises(self):
        seq = LocalSearchSequencer(backend="exact", prefix_cache=True)
        with pytest.raises(SequencingError, match="non-vector backend"):
            seq.sequence(bag_instance(2, 2, seed=0))

    def test_forcing_on_with_batch_lanes_raises(self):
        seq = LocalSearchSequencer(batch_lanes=2, prefix_cache=True)
        with pytest.raises(SequencingError, match="batch_lanes"):
            seq.sequence(bag_instance(2, 2, seed=0))

    def test_forcing_on_with_compiled_on_raises(self):
        seq = LocalSearchSequencer(compiled="on", prefix_cache=True)
        with pytest.raises(SequencingError, match="compiled"):
            seq.sequence(bag_instance(2, 2, seed=0))


class TestResumeBounds:
    def test_length_mismatch_disables_resume(self):
        bounds = LocalSearchSequencer._prefix_bounds(
            ((1, 2, 3), (4,)), ((1, 2), (3, 4))
        )
        assert bounds is None

    def test_identical_queues_are_unconstrained(self):
        bounds = LocalSearchSequencer._prefix_bounds(
            ((1, 2), (3, 4)), ((1, 2), (4, 3))
        )
        assert bounds == [None, 0]

    def test_divergence_index_is_the_common_prefix_length(self):
        bounds = LocalSearchSequencer._prefix_bounds(
            ((1, 2, 3, 4),), ((1, 2, 4, 3),)
        )
        assert bounds == [2]


class TestTelemetry:
    def test_prefix_hits_counter_is_recorded(self):
        session = TelemetrySession(tracing=False)
        with use_session(session):
            seq = LocalSearchSequencer(budget=40, seed=0, prefix_cache=True)
            seq.sequence(bag_instance(3, 3, seed=5))
        value = session.metrics.counter("sequencer.prefix_hits").value
        assert value == seq.last_stats["prefix_hits"] > 0
