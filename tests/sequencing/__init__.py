"""Tests for the sequencing layer (queue order as a decision variable)."""
