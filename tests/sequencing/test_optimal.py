"""OptimalSequencer: registration, targets, binding, and fallbacks."""

import pytest

from repro.core import Instance
from repro.exceptions import SequencingError
from repro.sequencing import OptimalSequencer, get_sequencer


@pytest.fixture
def inst() -> Instance:
    return Instance([["1/2", 1, "1/2"], [1, "1/2", 1]])


class TestTargets:
    def test_auto_uses_exact_mode_when_oracles_apply(self, inst):
        seq = get_sequencer("optimal")
        seq.sequence(inst)
        assert seq.last_certificate.mode == "exact"
        assert seq.last_certificate.proved

    def test_auto_falls_back_to_policy_mode_on_releases(self, inst):
        seq = get_sequencer("optimal")
        out = seq.sequence(inst.with_releases([0, 2]))
        assert out.releases == (0, 2)
        assert seq.last_certificate.mode == "epsilon"

    def test_explicit_opt_target_rejects_releases(self, inst):
        seq = get_sequencer("optimal", target="opt")
        with pytest.raises(SequencingError, match="target='policy'"):
            seq.sequence(inst.with_releases([0, 2]))

    def test_unknown_target_rejected(self):
        with pytest.raises(SequencingError, match="unknown target"):
            OptimalSequencer(target="oracle")

    def test_bad_max_nodes_rejected(self):
        with pytest.raises(SequencingError, match="max_nodes"):
            OptimalSequencer(max_nodes=0)


class TestBinding:
    def test_bind_adopts_unpinned_policy(self, inst):
        seq = get_sequencer("optimal", target="policy")
        bound = seq.bind(policy="round-robin")
        assert bound is not seq
        bound.sequence(inst)
        assert "round-robin" in bound.last_certificate.evaluator

    def test_bind_keeps_pinned_policy(self, inst):
        seq = get_sequencer("optimal", target="policy", policy="round-robin")
        bound = seq.bind(policy="greedy-balance")
        assert bound is seq  # nothing to adopt

    def test_sequence_result_achieves_certified_value(self, inst):
        from repro.core.simulator import run_policy

        seq = get_sequencer("optimal", target="policy", policy="round-robin")
        out = seq.sequence(inst)
        cert = seq.last_certificate
        span = run_policy(
            out, "round-robin", backend="vector", record_shares=False
        ).makespan
        assert span == cert.value
