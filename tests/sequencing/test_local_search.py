"""The local-search improver: determinism, budget, and the gadget gap."""

import pytest

from repro.core import Instance, run_policy
from repro.exceptions import SequencingError
from repro.reductions.partition import random_yes_instance
from repro.reductions.reduction import reduction_instance
from repro.sequencing import LocalSearchSequencer, get_sequencer


def gadget(seed: int) -> Instance:
    partition, _ = random_yes_instance(6, seed=seed)
    return reduction_instance(partition)


class TestDeterminism:
    def test_same_seed_same_result(self):
        inst = gadget(0)
        a = LocalSearchSequencer(budget=60, seed=5).sequence(inst)
        b = LocalSearchSequencer(budget=60, seed=5).sequence(inst)
        assert a == b

    def test_decorrelated_restart_streams_still_deterministic(self):
        inst = gadget(1)
        a = LocalSearchSequencer(budget=40, restarts=3, seed=2).sequence(inst)
        b = LocalSearchSequencer(budget=40, restarts=3, seed=2).sequence(inst)
        assert a == b


class TestBudget:
    def test_evaluation_budget_is_respected(self):
        seq = LocalSearchSequencer(budget=25, restarts=2, seed=0)
        seq.sequence(gadget(0))
        # One evaluation for the initial order, then at most
        # budget * restarts candidates.
        assert seq.last_stats["evaluations"] <= 25 * 2 + 1

    def test_invalid_budget_and_restarts_rejected(self):
        with pytest.raises(SequencingError):
            LocalSearchSequencer(budget=0)
        with pytest.raises(SequencingError):
            LocalSearchSequencer(restarts=0)

    def test_degenerate_instance_terminates(self):
        # One processor, one job: no non-trivial neighborhood exists;
        # the search must stop instead of spinning on no-op moves.
        inst = Instance([["1/2"]])
        seq = LocalSearchSequencer(budget=50, seed=0)
        assert seq.sequence(inst) is inst


class TestImprovement:
    @pytest.mark.parametrize("seed", range(4))
    def test_closes_the_gadget_gap(self, seed):
        # Theorem 4: YES gadgets admit a 4-step schedule, but
        # greedy-balance on the as-built order needs 5+.  The improver
        # must recover a strictly better order.
        inst = gadget(seed)
        fixed = run_policy(
            inst, "greedy-balance", backend="vector", record_shares=False
        ).makespan
        assert fixed >= 5
        seq = LocalSearchSequencer(budget=150, restarts=2, seed=seed)
        tuned = seq.sequence(inst)
        optimized = run_policy(
            tuned, "greedy-balance", backend="vector", record_shares=False
        ).makespan
        assert optimized == 4  # the gadget's proven optimum
        assert seq.last_stats["improved"] is True

    def test_never_returns_a_worse_order(self):
        inst = gadget(2)
        seq = LocalSearchSequencer(budget=30, seed=9)
        tuned = seq.sequence(inst)
        assert seq.last_stats["best"] <= seq.last_stats["initial"]
        fixed = run_policy(
            inst, "greedy-balance", backend="vector", record_shares=False
        ).makespan
        optimized = run_policy(
            tuned, "greedy-balance", backend="vector", record_shares=False
        ).makespan
        assert optimized <= fixed

    def test_preserves_bag_and_releases(self):
        inst = gadget(3).with_releases([0, 1, 0, 2, 0, 0])
        tuned = LocalSearchSequencer(budget=40, seed=1).sequence(inst)
        assert inst.same_bag(tuned)
        assert tuned.releases == inst.releases


class TestEvaluationTriple:
    def test_policy_name_resolves_in_constructor(self):
        seq = LocalSearchSequencer(policy="round-robin", budget=10)
        assert seq.policy.name == "round-robin"

    def test_unpinned_options_fall_back_to_defaults(self):
        seq = LocalSearchSequencer(budget=10)
        assert seq.policy.name == "greedy-balance"
        assert seq.objective.name == "makespan"

    def test_bind_aligns_unpinned_options_with_the_run(self):
        seq = LocalSearchSequencer(budget=10)
        bound = seq.bind(policy="round-robin", objective="tardiness")
        assert bound is not seq  # a bound copy, not a mutation
        assert bound.policy.name == "round-robin"
        assert bound.objective.name == "tardiness"
        # The caller's object keeps its unpinned standalone behavior.
        assert seq.policy.name == "greedy-balance"
        assert seq.objective.name == "makespan"

    def test_bind_never_overrides_explicit_options(self):
        seq = LocalSearchSequencer(
            policy="greedy-balance", objective="makespan", budget=10
        )
        assert seq.bind(policy="round-robin", objective="tardiness") is seq
        assert seq.policy.name == "greedy-balance"
        assert seq.objective.name == "makespan"

    def test_run_policy_does_not_leak_the_bound_policy(self):
        # A bare local-search threaded through run_policy is bound to
        # the executed policy via a copy; the caller's object stays
        # unpinned for later standalone use.
        seq = LocalSearchSequencer(budget=15, seed=0)
        run_policy(
            gadget(0), "round-robin", backend="vector",
            record_shares=False, sequencer=seq,
        )
        assert seq.policy.name == "greedy-balance"

    def test_static_sequencers_ignore_bind(self):
        from repro.sequencing import FixedOrder, SPTOrder

        assert FixedOrder().bind(policy="round-robin") is not None
        spt = SPTOrder()
        assert spt.bind(policy="round-robin") is spt

    def test_exact_backend_evaluation_agrees_on_the_gadget(self):
        inst = gadget(0)
        fast = LocalSearchSequencer(budget=60, seed=4, backend="vector")
        slow = LocalSearchSequencer(budget=60, seed=4, backend="exact")
        assert fast.sequence(inst) == slow.sequence(inst)

    def test_objective_driven_search_minimizes_that_objective(self):
        from repro.generators import with_deadlines

        inst = with_deadlines(
            Instance.from_percent([[90, 30, 60], [50, 80, 20]]),
            profile="tight",
            seed=0,
        )
        seq = LocalSearchSequencer(
            policy="edf-waterfill",
            objective="tardiness",
            budget=80,
            seed=0,
        )
        tuned = seq.sequence(inst)
        assert inst.same_bag(tuned)
        assert seq.last_stats["best"] <= seq.last_stats["initial"]
