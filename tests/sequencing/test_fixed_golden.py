"""The ``fixed`` sequencer pins today's behavior bit-identically.

Re-runs the golden suite (``tests/data/golden_schedules.json``, the
pre-kernel reference outputs) through the sequencer axis with the
identity strategy: the exact share rows must keep the recorded SHA-256
digest, so adding the sequencing layer cannot have perturbed the
fixed-order model.
"""

import json

import pytest

from repro.algorithms import get_policy
from repro.core import run_policy
from repro.sequencing import FixedOrder

from ..data.make_golden import CASES, GOLDEN_PATH, share_digest

GOLDEN = json.loads(GOLDEN_PATH.read_text())
_BUILDERS = dict(CASES)


@pytest.mark.parametrize(
    "entry",
    GOLDEN["entries"],
    ids=lambda e: f"{e['case']}-{e['policy']}",
)
def test_fixed_sequencer_is_bit_identical_to_golden(entry):
    instance = _BUILDERS[entry["case"]]()
    result = run_policy(
        instance, get_policy(entry["policy"]), sequencer="fixed"
    )
    assert result.makespan == entry["exact_makespan"]
    assert share_digest(result.schedule) == entry["share_sha256"]


@pytest.mark.parametrize(
    "entry",
    GOLDEN["entries"][:6],
    ids=lambda e: f"{e['case']}-{e['policy']}",
)
def test_fixed_sequencer_returns_identical_instance(entry):
    instance = _BUILDERS[entry["case"]]()
    assert FixedOrder().sequence(instance) is instance
