"""Core order/bag helpers: from_bag, with_order, with_queues, same_bag."""

import pytest

from repro.core import Instance, Job
from repro.exceptions import InvalidInstanceError


class TestFromBag:
    def test_round_robin_deal(self):
        inst = Instance.from_bag(["1/2", "1/4", "3/4", "1/8", "1/3"], 2)
        assert inst.num_processors == 2
        assert [len(q) for q in inst.queues] == [3, 2]
        assert inst.job(0, 0).requirement == Job("1/2").requirement
        assert inst.job(1, 0).requirement == Job("1/4").requirement

    def test_accepts_job_objects_and_numbers(self):
        jobs = [Job("1/2", 2), "1/4", 1]
        inst = Instance.from_bag(jobs, 3)
        assert inst.job(0, 0).size == 2

    def test_preserves_releases(self):
        inst = Instance.from_bag(["1/2", "1/4"], 2, releases=[0, 3])
        assert inst.releases == (0, 3)

    def test_rejects_underfull_bag(self):
        with pytest.raises(InvalidInstanceError):
            Instance.from_bag(["1/2"], 2)

    def test_rejects_zero_processors(self):
        with pytest.raises(InvalidInstanceError):
            Instance.from_bag(["1/2"], 0)


class TestJobBagAndSameBag:
    def test_job_bag_flattens_processor_major(self):
        inst = Instance([["1/2", "1/4"], ["3/4"]])
        assert [j.requirement for j in inst.job_bag()] == [
            Job("1/2").requirement,
            Job("1/4").requirement,
            Job("3/4").requirement,
        ]

    def test_same_bag_ignores_order_and_placement(self):
        a = Instance([["1/2", "1/4"], ["3/4"]])
        b = Instance([["3/4", "1/2"], ["1/4"]])
        assert a.same_bag(b) and b.same_bag(a)

    def test_same_bag_detects_changed_multiset(self):
        a = Instance([["1/2", "1/4"], ["3/4"]])
        b = Instance([["1/2", "1/2"], ["3/4"]])
        assert not a.same_bag(b)

    def test_same_bag_with_deadline_annotations(self):
        a = Instance([[Job("1/2", deadline=3), Job("1/2")]])
        b = Instance([[Job("1/2"), Job("1/2", deadline=3)]])
        c = Instance([[Job("1/2"), Job("1/2")]])
        assert a.same_bag(b)
        assert not a.same_bag(c)


class TestWithOrder:
    def test_identity_permutation(self):
        inst = Instance([["1/2", "1/4"], ["3/4"]])
        out = inst.with_order([[0, 1], [0]])
        assert out == inst

    def test_reverses_queue(self):
        inst = Instance([["1/2", "1/4", "1/8"]])
        out = inst.with_order([[2, 1, 0]])
        assert [j.requirement for j in out.queues[0]] == [
            Job("1/8").requirement,
            Job("1/4").requirement,
            Job("1/2").requirement,
        ]

    def test_preserves_releases(self):
        inst = Instance([["1/2", "1/4"], ["3/4"]], releases=[1, 0])
        assert inst.with_order([[1, 0], [0]]).releases == (1, 0)

    def test_rejects_non_permutation(self):
        inst = Instance([["1/2", "1/4"]])
        with pytest.raises(InvalidInstanceError):
            inst.with_order([[0, 0]])
        with pytest.raises(InvalidInstanceError):
            inst.with_order([[0]])

    def test_rejects_row_count_mismatch(self):
        inst = Instance([["1/2", "1/4"], ["3/4"]])
        with pytest.raises(InvalidInstanceError):
            inst.with_order([[0, 1]])


class TestWithQueues:
    def test_replaces_queues_keeping_releases(self):
        inst = Instance([["1/2"], ["3/4"]], releases=[2, 0])
        out = inst.with_queues([["3/4"], ["1/2"]])
        assert out.releases == (2, 0)
        assert out.job(0, 0).requirement == Job("3/4").requirement

    def test_rejects_processor_count_change(self):
        inst = Instance([["1/2"], ["3/4"]])
        with pytest.raises(InvalidInstanceError):
            inst.with_queues([["1/2", "3/4"]])
