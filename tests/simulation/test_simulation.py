"""Unit tests for the many-core simulation substrate."""

from fractions import Fraction

import pytest

from repro.algorithms import GreedyBalance
from repro.core import simulate
from repro.generators import Phase, TaskSpec, make_io_workload, tasks_to_instance
from repro.simulation import (
    ManyCoreEngine,
    ManyCoreSystem,
    SharedResource,
    run_workload,
)


class TestSharedResource:
    def test_grant_accounting(self):
        bus = SharedResource()
        bus.begin_step()
        bus.grant("1/2")
        assert bus.granted_this_step == Fraction(1, 2)
        bus.grant("1/2")
        with pytest.raises(ValueError, match="exceeds"):
            bus.grant("1/10")

    def test_negative_grant_rejected(self):
        bus = SharedResource()
        bus.begin_step()
        with pytest.raises(ValueError, match="negative"):
            bus.grant(-1)

    def test_mean_utilization(self):
        bus = SharedResource()
        for amount in ("1/2", "1"):
            bus.begin_step()
            bus.grant(amount)
        assert bus.mean_utilization == Fraction(3, 4)

    def test_empty_utilization(self):
        assert SharedResource().mean_utilization == 0


class TestManyCoreSystem:
    def test_construction(self):
        system = ManyCoreSystem(4)
        assert system.num_cores == 4

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            ManyCoreSystem(0)


class TestEngine:
    @pytest.fixture
    def tasks(self) -> list[TaskSpec]:
        return [
            TaskSpec("stream", [Phase("1/2", 2)]),
            TaskSpec("burst", [Phase("1/10", 1), Phase("9/10", 1)]),
        ]

    def test_trace_matches_abstract_simulator(self, tasks):
        """The physical engine and the abstract simulator must agree
        step for step (same policy, same instance)."""
        policy = GreedyBalance()
        trace = run_workload(tasks, policy, unit_split=True)
        instance = tasks_to_instance(tasks, unit_split=True)
        abstract = simulate(instance, policy)
        assert trace.makespan == abstract.makespan
        for t, record in enumerate(trace.steps):
            assert record.grants == abstract.step(t).shares

    def test_core_summaries(self, tasks):
        trace = run_workload(tasks, GreedyBalance(), unit_split=True)
        assert len(trace.core_summaries) == 2
        for cs in trace.core_summaries:
            assert cs.busy_steps + cs.stall_steps >= cs.phases or cs.busy_steps > 0
            assert 0 <= cs.completion_step < trace.makespan

    def test_bus_utilization_in_range(self, tasks):
        trace = run_workload(tasks, GreedyBalance(), unit_split=True)
        assert 0 < trace.bus_utilization <= 1

    def test_general_sizes_supported(self, tasks):
        trace = run_workload(tasks, GreedyBalance(), unit_split=False)
        assert trace.makespan >= 2

    def test_summary_table_renders(self, tasks):
        trace = run_workload(tasks, GreedyBalance(), unit_split=True)
        text = trace.summary_table()
        assert "greedy-balance" in text
        assert "stream" in text

    def test_engine_requires_tasks(self):
        with pytest.raises(ValueError):
            ManyCoreEngine([])

    def test_full_workload_end_to_end(self):
        tasks = make_io_workload(6, seed=0)
        trace = run_workload(tasks, GreedyBalance(), unit_split=True)
        instance = tasks_to_instance(tasks, unit_split=True)
        # Nothing finishes before the work bound.
        assert trace.makespan >= instance.work_lower_bound()
