"""Generators for the objective axes: weights, deadlines, Poisson arrivals."""

import pytest

from repro.backends.batch import make_campaign_instances
from repro.generators import (
    DEADLINE_PROFILES,
    WEIGHT_PROFILES,
    poisson_arrivals,
    uniform_instance,
    with_deadlines,
    with_poisson_arrivals,
    with_weights,
)


class TestPoissonArrivals:
    def test_deterministic_from_seed(self):
        assert poisson_arrivals(6, rate=0.7, seed=4) == poisson_arrivals(
            6, rate=0.7, seed=4
        )

    def test_distinct_seeds_differ(self):
        draws = {poisson_arrivals(8, rate=0.7, seed=s) for s in range(10)}
        assert len(draws) > 1

    def test_pin_first_starts_at_zero(self):
        for seed in range(10):
            assert min(poisson_arrivals(5, rate=0.2, seed=seed)) == 0

    def test_unpinned_keeps_raw_process(self):
        raw = poisson_arrivals(5, rate=0.05, seed=1, pin_first=False)
        assert all(r >= 0 for r in raw)

    def test_higher_rate_packs_tighter(self):
        slow = poisson_arrivals(20, rate=0.1, seed=3)
        fast = poisson_arrivals(20, rate=10.0, seed=3)
        assert max(fast) < max(slow)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError, match="rate must be positive"):
            poisson_arrivals(3, rate=0.0)

    def test_with_poisson_arrivals_composes(self):
        inst = with_poisson_arrivals(
            uniform_instance(4, 3, seed=0), rate=0.5, seed=1
        )
        assert inst.releases == poisson_arrivals(4, rate=0.5, seed=1)
        # Requirements untouched.
        assert inst.with_releases(None) == uniform_instance(4, 3, seed=0)


class TestWeightProfiles:
    def test_unit_is_identity(self):
        inst = uniform_instance(3, 3, seed=0)
        assert with_weights(inst, profile="unit") is inst

    def test_uniform_and_skewed_annotate(self):
        inst = uniform_instance(3, 3, seed=0)
        for profile in ("uniform", "skewed"):
            out = with_weights(inst, profile=profile, seed=1)
            assert out.has_weights
            weights = [job.weight for _, job in out.jobs()]
            assert all(1 <= w <= 10 for w in weights)

    def test_skewed_is_mostly_unit(self):
        out = with_weights(
            uniform_instance(10, 10, seed=0), profile="skewed", seed=2
        )
        weights = [job.weight for _, job in out.jobs()]
        assert weights.count(1) > len(weights) / 2
        assert any(w == 10 for w in weights)

    def test_requirements_and_releases_preserved(self):
        inst = uniform_instance(3, 3, seed=0).with_releases([0, 2, 4])
        out = with_weights(inst, profile="uniform", seed=3)
        assert out.releases == inst.releases
        assert [j.requirement for _, j in out.jobs()] == [
            j.requirement for _, j in inst.jobs()
        ]

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown weight profile"):
            with_weights(uniform_instance(2, 2, seed=0), profile="nope")

    def test_profiles_constant_is_exhaustive(self):
        assert set(WEIGHT_PROFILES) == {"unit", "uniform", "skewed"}


class TestDeadlineProfiles:
    def test_every_profile_annotates_all_jobs(self):
        inst = uniform_instance(3, 4, seed=0)
        for profile in DEADLINE_PROFILES:
            out = with_deadlines(inst, profile=profile, seed=1)
            assert out.has_deadlines
            assert all(job.deadline is not None for _, job in out.jobs())

    def test_deadlines_at_least_earliest_completion_when_tight(self):
        inst = uniform_instance(3, 4, seed=0)
        out = with_deadlines(inst, profile="tight", seed=2)
        earliest = out.earliest_completion_times()
        for jid, job in out.jobs():
            assert job.deadline >= earliest[jid]

    def test_loose_looser_than_tight(self):
        inst = uniform_instance(3, 4, seed=0)
        tight = with_deadlines(inst, profile="tight", seed=3)
        loose = with_deadlines(inst, profile="loose", seed=3)
        assert sum(j.deadline for _, j in loose.jobs()) > sum(
            j.deadline for _, j in tight.jobs()
        )

    def test_release_aware(self):
        inst = uniform_instance(2, 2, seed=0).with_releases([0, 10])
        out = with_deadlines(inst, profile="tight", seed=4)
        # Deadlines on the late processor sit past its release.
        assert all(job.deadline > 10 for job in out.queues[1])

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown deadline profile"):
            with_deadlines(uniform_instance(2, 2, seed=0), profile="nope")


class TestCampaignComposition:
    def test_defaults_bit_identical_to_legacy(self):
        legacy = make_campaign_instances(5, 3, 3, seed=0)
        annotated_off = make_campaign_instances(
            5, 3, 3, seed=0, weights_profile="unit", deadline_profile=None
        )
        assert legacy == annotated_off
        assert not any(inst.has_weights for inst in legacy)

    def test_all_axes_compose(self):
        instances = make_campaign_instances(
            4,
            3,
            3,
            seed=0,
            weights_profile="skewed",
            deadline_profile="mixed",
            arrival_rate=1.0,
        )
        for inst in instances:
            assert inst.has_weights
            assert inst.has_deadlines

    def test_poisson_overrides_uniform_arrivals(self):
        poisson = make_campaign_instances(
            2, 4, 3, seed=0, max_release=50, arrival_rate=0.2
        )
        uniform = make_campaign_instances(2, 4, 3, seed=0, max_release=50)
        assert poisson != uniform

    def test_deterministic(self):
        kwargs = dict(
            seed=7,
            weights_profile="uniform",
            deadline_profile="tight",
            arrival_rate=0.5,
        )
        assert make_campaign_instances(
            4, 3, 3, **kwargs
        ) == make_campaign_instances(4, 3, 3, **kwargs)
