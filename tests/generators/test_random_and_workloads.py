"""Unit tests for random instance generators and workload models."""

from fractions import Fraction

import pytest

from repro.generators import (
    Phase,
    TaskSpec,
    bimodal_instance,
    general_size_instance,
    heavy_tail_instance,
    make_io_workload,
    ragged_instance,
    tasks_to_instance,
    uniform_instance,
)


class TestUniform:
    def test_shape_and_bounds(self):
        inst = uniform_instance(3, 5, seed=0)
        assert inst.num_processors == 3
        assert all(inst.num_jobs(i) == 5 for i in range(3))
        for _, job in inst.jobs():
            assert 0 < job.requirement <= 1

    def test_seed_reproducibility(self):
        assert uniform_instance(2, 4, seed=9) == uniform_instance(2, 4, seed=9)
        assert uniform_instance(2, 4, seed=9) != uniform_instance(2, 4, seed=10)

    def test_grid_denominators(self):
        inst = uniform_instance(2, 10, grid=8, seed=1)
        assert inst.resource_denominator() in (1, 2, 4, 8)

    def test_range_validation(self):
        with pytest.raises(ValueError):
            uniform_instance(2, 2, low=50, high=10)


class TestOtherFamilies:
    def test_bimodal_modes(self):
        inst = bimodal_instance(4, 50, heavy_prob=0.5, seed=3)
        values = [float(job.requirement) for _, job in inst.jobs()]
        assert any(v >= 0.7 for v in values)
        assert any(v <= 0.1 for v in values)
        assert not any(0.1 < v < 0.7 for v in values)

    def test_ragged_lengths_in_range(self):
        inst = ragged_instance(5, (2, 6), seed=4)
        for i in range(5):
            assert 2 <= inst.num_jobs(i) <= 6

    def test_heavy_tail_in_bounds(self):
        inst = heavy_tail_instance(3, 30, seed=5)
        for _, job in inst.jobs():
            assert Fraction(0) < job.requirement <= 1

    def test_general_sizes(self):
        inst = general_size_instance(2, 4, max_size=3, seed=6)
        assert not inst.is_unit_size
        for _, job in inst.jobs():
            assert 1 <= job.size <= 3


class TestWorkloads:
    def test_phase_validation(self):
        with pytest.raises(ValueError):
            Phase("1/2", 0)

    def test_task_requires_phases(self):
        with pytest.raises(ValueError):
            TaskSpec("empty", [])

    def test_tasks_to_instance_unit_split(self):
        tasks = [TaskSpec("t", [Phase("1/2", 3), Phase("1/4", 1)])]
        inst = tasks_to_instance(tasks, unit_split=True)
        assert inst.num_jobs(0) == 4
        assert inst.is_unit_size
        assert inst.requirements(0)[:3] == (Fraction(1, 2),) * 3

    def test_tasks_to_instance_whole_phases(self):
        tasks = [TaskSpec("t", [Phase("1/2", 3)])]
        inst = tasks_to_instance(tasks, unit_split=False)
        assert inst.num_jobs(0) == 1
        assert inst.job(0, 0).size == 3
        assert not inst.is_unit_size

    def test_workload_mix(self):
        tasks = make_io_workload(10, seed=0)
        assert len(tasks) == 10
        kinds = {t.name.split("-")[0] for t in tasks}
        assert kinds == {"stream", "bursty", "compute"}

    def test_workload_volume_conservation(self):
        tasks = make_io_workload(6, seed=1)
        inst = tasks_to_instance(tasks, unit_split=True)
        assert inst.total_jobs == sum(t.total_volume for t in tasks)

    def test_workload_seeded(self):
        a = make_io_workload(5, seed=2)
        b = make_io_workload(5, seed=2)
        assert [t.phases for t in a] == [t.phases for t in b]
