"""Unit tests for the canonical and adversarial instance generators."""

from fractions import Fraction

import pytest

from repro.core import frac_sum
from repro.generators import (
    fig1_instance,
    fig2_instance,
    fig2_nested_schedule,
    fig2_unnested_schedule,
    greedy_balance_adversarial,
    greedy_balance_witness_schedule,
    max_blocks,
    round_robin_adversarial,
    round_robin_optimal_schedule,
)


class TestFigureInstances:
    def test_fig1_values(self):
        inst = fig1_instance()
        assert inst.num_processors == 3
        assert [inst.num_jobs(i) for i in range(3)] == [4, 5, 3]
        assert inst.requirement(1, 2) == Fraction(9, 10)

    def test_fig2_values(self):
        inst = fig2_instance()
        assert inst.requirements(0) == (Fraction(1, 2),) * 4
        assert inst.requirement(1, 0) == 1
        assert inst.requirement(2, 0) == 1

    def test_fig2_schedules_as_captioned(self):
        from repro.core.properties import is_nested, is_non_wasting, is_progressive

        for sched in (fig2_nested_schedule(), fig2_unnested_schedule()):
            assert sched.makespan == 4
            assert is_non_wasting(sched)
            assert is_progressive(sched)
        assert is_nested(fig2_nested_schedule())
        assert not is_nested(fig2_unnested_schedule())


class TestRoundRobinAdversarial:
    @pytest.mark.parametrize("n", [1, 2, 7, 50])
    def test_requirement_structure(self, n):
        inst = round_robin_adversarial(n)
        eps = Fraction(1, n)
        for j in range(n):
            assert inst.requirement(0, j) == (j + 1) * eps
            assert inst.requirement(0, j) + inst.requirement(1, j) == 1 + eps

    def test_phases_need_two_steps(self):
        inst = round_robin_adversarial(10)
        for j in range(10):
            total = inst.requirement(0, j) + inst.requirement(1, j)
            assert 1 < total <= 2

    def test_diagonals_fit_exactly(self):
        inst = round_robin_adversarial(10)
        for j in range(1, 10):
            assert inst.requirement(0, j - 1) + inst.requirement(1, j) == 1

    @pytest.mark.parametrize("n", [1, 5, 20])
    def test_optimal_witness_schedule(self, n):
        assert round_robin_optimal_schedule(n).makespan == n + 1

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            round_robin_adversarial(0)


class TestGreedyBalanceAdversarial:
    def test_figure5_shape(self):
        inst = greedy_balance_adversarial(3, 3, Fraction(1, 100))
        assert inst.num_processors == 3
        assert inst.max_jobs == 9

    def test_interior_diagonals_sum_to_one(self):
        for m in (2, 3, 4, 5):
            inst = greedy_balance_adversarial(m, 3)
            n = inst.max_jobs
            # Diagonal ending in the bottom row at column s.
            for s in range(m, n):
                total = frac_sum(
                    inst.requirement(m - 1 - k, s - k) for k in range(m)
                )
                assert total == 1, (m, s)

    def test_requirements_in_bounds(self):
        for m in (2, 3, 4, 6):
            inst = greedy_balance_adversarial(m, 4)
            for _, job in inst.jobs():
                assert 0 <= job.requirement <= 1

    def test_max_blocks_guard(self):
        eps = Fraction(1, 100)
        limit = max_blocks(3, eps)
        greedy_balance_adversarial(3, limit, eps)  # fits
        with pytest.raises(ValueError, match="smaller epsilon"):
            greedy_balance_adversarial(3, limit + 1, eps)

    def test_default_epsilon_always_fits(self):
        for m in (2, 3, 5):
            for blocks in (1, 2, 10, 25):
                inst = greedy_balance_adversarial(m, blocks)
                assert inst.max_jobs == m * blocks

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            greedy_balance_adversarial(1, 2)
        with pytest.raises(ValueError):
            greedy_balance_adversarial(3, 0)

    @pytest.mark.parametrize("m", [2, 3, 4, 5, 6])
    def test_witness_schedule_length(self, m):
        inst = greedy_balance_adversarial(m, 2)
        witness = greedy_balance_witness_schedule(inst, m)
        assert witness.makespan == inst.max_jobs + m - 1
