"""Unit tests for exact JSON serialization."""

from fractions import Fraction

import pytest

from repro.algorithms import GreedyBalance
from repro.core import Instance, Job
from repro.generators import uniform_instance
from repro.io import (
    instance_from_dict,
    instance_to_dict,
    load_instance,
    load_schedule,
    save_instance,
    save_schedule,
    schedule_from_dict,
    schedule_to_dict,
)


class TestInstanceRoundTrip:
    def test_unit_instance(self, two_proc_instance):
        data = instance_to_dict(two_proc_instance)
        assert data["format"] == "crsharing-instance"
        assert instance_from_dict(data) == two_proc_instance

    def test_general_sizes(self):
        inst = Instance([[Job("1/3", "5/2")], [Job(1)]])
        assert instance_from_dict(instance_to_dict(inst)) == inst

    def test_exactness_of_thirds(self):
        # 1/3 has no finite decimal/binary representation; the round
        # trip must still be exact.
        inst = Instance.from_requirements([["1/3", "2/3"]])
        back = instance_from_dict(instance_to_dict(inst))
        assert back.requirement(0, 0) == Fraction(1, 3)

    def test_integers_stay_bare(self):
        data = instance_to_dict(Instance.from_requirements([[1]]))
        assert data["processors"][0][0]["r"] == 1

    def test_format_checks(self):
        with pytest.raises(ValueError, match="not a CRSharing instance"):
            instance_from_dict({"format": "bogus"})
        data = instance_to_dict(Instance.from_requirements([[1]]))
        data["version"] = 99
        with pytest.raises(ValueError, match="version"):
            instance_from_dict(data)

    def test_file_round_trip(self, tmp_path, two_proc_instance):
        path = tmp_path / "instance.json"
        save_instance(two_proc_instance, path)
        assert load_instance(path) == two_proc_instance


class TestMultiResourceRoundTrip:
    def multi_instance(self) -> Instance:
        return Instance(
            [
                [Job(["1/2", "1/3"], "5/2"), Job(["1/4", "1"])],
                [Job(["9/10", "1/10"])],
            ],
            releases=[0, 4],
        )

    def test_round_trip_with_releases_and_requirements(self):
        inst = self.multi_instance()
        data = instance_to_dict(inst)
        assert data["version"] == 2
        assert data["resources"] == 2
        assert data["releases"] == [0, 4]
        assert data["processors"][0][0]["r"] == ["1/2", "1/3"]
        back = instance_from_dict(data)
        assert back == inst
        assert back.num_resources == 2
        assert back.releases == (0, 4)
        assert back.job(0, 0).size == Fraction(5, 2)

    def test_file_round_trip(self, tmp_path):
        from repro.generators import multi_resource_instance, with_arrivals

        inst = with_arrivals(
            multi_resource_instance(3, 4, 3, profile="correlated", seed=2),
            max_release=5,
            seed=9,
        )
        path = tmp_path / "multi.json"
        save_instance(inst, path)
        assert load_instance(path) == inst

    def test_single_resource_documents_stay_version_1(self, two_proc_instance):
        data = instance_to_dict(two_proc_instance)
        assert data["version"] == 1
        assert "resources" not in data

    def test_contradictory_resource_count_rejected(self):
        data = instance_to_dict(self.multi_instance())
        data["resources"] = 3
        with pytest.raises(ValueError, match="declares 3 shared resources"):
            instance_from_dict(data)

    def test_exactness_of_vector_components(self):
        inst = Instance([[Job(["1/3", "2/7"])]])
        back = instance_from_dict(instance_to_dict(inst))
        assert back.job(0, 0).requirements == (Fraction(1, 3), Fraction(2, 7))


class TestScheduleRoundTrip:
    def test_round_trip(self, two_proc_instance):
        sched = GreedyBalance().run(two_proc_instance)
        back = schedule_from_dict(schedule_to_dict(sched))
        assert back == sched
        assert back.makespan == sched.makespan

    def test_revalidates_on_load(self, two_proc_instance):
        sched = GreedyBalance().run(two_proc_instance)
        data = schedule_to_dict(sched)
        data["shares"][0] = ["1", "1"]  # corrupt: overuse
        with pytest.raises(Exception):
            schedule_from_dict(data)

    def test_file_round_trip(self, tmp_path):
        inst = uniform_instance(3, 3, seed=1)
        sched = GreedyBalance().run(inst)
        path = tmp_path / "schedule.json"
        save_schedule(sched, path)
        assert load_schedule(path) == sched

    def test_format_check(self):
        with pytest.raises(ValueError, match="not a CRSharing schedule"):
            schedule_from_dict({"format": "bogus"})


class TestObjectiveAnnotationRoundTrip:
    """Version-3 documents: per-job weights and deadlines."""

    def test_annotated_instance_round_trips(self):
        inst = Instance(
            [
                [Job("1/2", weight=3, deadline=4), Job("1/4")],
                [Job("2/3", 2, weight="5/2")],
            ],
            releases=[0, 2],
        )
        data = instance_to_dict(inst)
        assert data["version"] == 3
        back = instance_from_dict(data)
        assert back == inst
        assert back.job(0, 0).weight == Fraction(3)
        assert back.job(0, 0).deadline == 4
        assert back.job(1, 0).weight == Fraction(5, 2)
        assert back.job(0, 1).deadline is None

    def test_default_annotations_keep_version_1(self):
        inst = uniform_instance(3, 3, seed=0)
        data = instance_to_dict(inst)
        assert data["version"] == 1
        assert all(
            "w" not in job and "d" not in job
            for queue in data["processors"]
            for job in queue
        )

    def test_multi_resource_annotated_is_version_3(self):
        inst = Instance([[Job(["1/2", "1/4"], deadline=2)]])
        data = instance_to_dict(inst)
        assert data["version"] == 3
        assert data["resources"] == 2
        back = instance_from_dict(data)
        assert back == inst

    def test_generated_profiles_round_trip(self):
        from repro.generators import with_deadlines, with_weights

        inst = with_deadlines(
            with_weights(uniform_instance(3, 4, seed=5), profile="skewed", seed=5),
            profile="mixed",
            seed=5,
        )
        assert instance_from_dict(instance_to_dict(inst)) == inst

    def test_annotated_schedule_round_trips(self):
        inst = Instance.from_requirements(
            [["1/2", "1/2"], ["1/2", "1/2"]]
        ).with_deadlines([[1, 3], [2, 4]])
        sched = GreedyBalance().run(inst)
        back = schedule_from_dict(schedule_to_dict(sched))
        assert back == sched
        assert back.instance.has_deadlines

    def test_version_3_rejected_fields_still_validated(self):
        data = instance_to_dict(Instance([[Job("1/2", weight=2)]]))
        data["processors"][0][0]["w"] = "-1"
        with pytest.raises(Exception):
            instance_from_dict(data)
