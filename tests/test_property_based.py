"""Property-based tests (hypothesis) for the paper's core invariants.

These are the highest-value tests in the repository: each one states a
theorem/lemma as an executable property and lets hypothesis hunt for
counterexamples over random exact-rational instances.
"""

from fractions import Fraction

from hypothesis import HealthCheck, given, settings

from repro.algorithms import (
    GreedyBalance,
    GreedyFinishJobs,
    LargestRequirementFirst,
    RoundRobin,
    brute_force_makespan,
    opt_res_assignment,
    opt_res_assignment_general,
    opt_res_assignment_pq,
    round_robin_makespan_formula,
)
from repro.analysis import verify_schedule
from repro.core import (
    SchedulingGraph,
    best_lower_bound,
    is_balanced,
    is_non_wasting,
    is_progressive,
    lemma5_bound,
    lemma6_bound,
    length_bound,
    make_nice,
    theorem7_reference,
    work_bound,
)
from repro.core.properties import is_nice
from repro.io import instance_from_dict, instance_to_dict

from .conftest import tiny_instances_for_exact, unit_instances

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@settings(max_examples=60, **COMMON)
@given(inst=unit_instances())
def test_greedy_balance_invariants(inst):
    """GreedyBalance is balanced, non-wasting and progressive on every
    instance (the hypotheses of Theorem 7)."""
    sched = GreedyBalance().run(inst)
    assert is_balanced(sched)
    assert is_non_wasting(sched)
    assert is_progressive(sched)
    assert verify_schedule(sched).ok


@settings(max_examples=60, **COMMON)
@given(inst=unit_instances())
def test_lemma_2_and_observation_2(inst):
    """Structural hypergraph facts for balanced schedules."""
    graph = SchedulingGraph(GreedyBalance().run(inst))
    assert graph.check_observation_2()
    assert graph.check_classes_decreasing()
    assert graph.check_lemma_2()


@settings(max_examples=60, **COMMON)
@given(inst=unit_instances())
def test_theorem_7_bound(inst):
    """S <= (2 - 1/m) * max(LB5, LB6 + 1, n) for GreedyBalance."""
    m = inst.num_processors
    sched = GreedyBalance().run(inst)
    graph = SchedulingGraph(sched)
    assert sched.makespan <= (2 - Fraction(1, m)) * theorem7_reference(graph)


@settings(max_examples=40, **COMMON)
@given(inst=tiny_instances_for_exact())
def test_exact_solvers_agree(inst):
    """The fixed-m search equals the independent brute-force optimum;
    for m = 2 the DP and PQ variants agree as well (Theorems 5/6)."""
    general = opt_res_assignment_general(inst).makespan
    assert general == brute_force_makespan(inst)
    if inst.num_processors == 2:
        assert general == opt_res_assignment(inst).makespan
        assert general == opt_res_assignment_pq(inst).makespan


@settings(max_examples=40, **COMMON)
@given(inst=tiny_instances_for_exact())
def test_policies_never_beat_opt_and_respect_ratios(inst):
    """OPT <= policy makespans; RR <= 2 OPT; GB <= (2 - 1/m) OPT."""
    m = inst.num_processors
    opt = opt_res_assignment_general(inst).makespan
    rr = RoundRobin().run(inst).makespan
    gb = GreedyBalance().run(inst).makespan
    assert opt <= gb and opt <= rr
    assert rr <= 2 * opt
    assert gb * m <= (2 * m - 1) * opt


@settings(max_examples=40, **COMMON)
@given(inst=tiny_instances_for_exact())
def test_lower_bounds_never_exceed_opt(inst):
    """Observation 1, the length bound and the Lemma 5/6 certificates
    are genuine lower bounds."""
    opt = opt_res_assignment_general(inst).makespan
    assert work_bound(inst) <= opt
    assert length_bound(inst) <= opt
    gb = GreedyBalance().run(inst)
    graph = SchedulingGraph(gb)
    assert lemma5_bound(graph) <= opt
    assert lemma6_bound(graph) <= opt
    assert best_lower_bound(inst, gb) <= opt


@settings(max_examples=60, **COMMON)
@given(inst=unit_instances())
def test_round_robin_formula(inst):
    """The simulated RoundRobin matches its closed-form makespan."""
    assert RoundRobin().run(inst).makespan == round_robin_makespan_formula(inst)


@settings(max_examples=30, **COMMON)
@given(inst=unit_instances(max_m=3, max_n=3, grid=8))
def test_lemma_1_transform(inst):
    """make_nice yields a nice schedule without increasing makespan,
    starting from assorted (possibly wasteful / unnested) schedules."""
    for policy in (LargestRequirementFirst(), GreedyFinishJobs(), RoundRobin()):
        sched = policy.run(inst)
        nice = make_nice(sched)
        assert is_nice(nice)
        assert nice.makespan <= sched.makespan
        assert verify_schedule(nice).ok


@settings(max_examples=60, **COMMON)
@given(inst=unit_instances())
def test_serialization_roundtrip(inst):
    assert instance_from_dict(instance_to_dict(inst)) == inst


@settings(max_examples=60, **COMMON)
@given(inst=unit_instances())
def test_speed_scaling_equivalence(inst):
    """Eq. (1) and Eq. (2) yield identical completion bookkeeping
    (the Section 3.1 alternative-interpretation claim)."""
    from repro.core import completion_times_eq1

    sched = GreedyBalance().run(inst)
    assert completion_times_eq1(inst, sched) == dict(sched.completion_steps)


@settings(max_examples=60, **COMMON)
@given(inst=unit_instances())
def test_continuous_fluid_invariants(inst):
    """Fluid GreedyBalance is feasible and respects the continuous
    lower bound on every instance."""
    from repro.core import continuous_greedy_balance, continuous_lower_bound

    fluid = continuous_greedy_balance(inst)
    fluid.validate()
    assert fluid.makespan >= continuous_lower_bound(inst)


@settings(max_examples=60, **COMMON)
@given(inst=unit_instances())
def test_fastpath_equivalence(inst):
    """The integer-grid fast path equals the exact simulation."""
    from repro.algorithms import greedy_balance_makespan, round_robin_makespan

    assert greedy_balance_makespan(inst) == GreedyBalance().run(inst).makespan
    assert round_robin_makespan(inst) == RoundRobin().run(inst).makespan


@settings(max_examples=60, **COMMON)
@given(inst=unit_instances())
def test_all_water_fill_policies_complete_and_validate(inst):
    for policy in (GreedyBalance(), GreedyFinishJobs(), LargestRequirementFirst()):
        sched = policy.run(inst)
        assert verify_schedule(sched).ok
        # Non-wasting + progressive hold for every water-fill policy.
        assert is_non_wasting(sched)
        assert is_progressive(sched)
