"""End-to-end integration: the full user journey through the library.

Simulates what a downstream user does: model a workload, convert it,
run every policy, verify and serialize the schedules, analyze structure
and bounds, solve exactly, and compare -- one test per pipeline stage,
sharing state through fixtures so failures localize."""

from fractions import Fraction

import pytest

from repro import (
    GreedyBalance,
    best_lower_bound,
    opt_res_assignment_general,
)
from repro.algorithms import available_policies, get_policy, greedy_balance_makespan
from repro.analysis import compute_metrics, mean_completion_time, verify_schedule
from repro.core import SchedulingGraph, make_nice
from repro.core.properties import is_nice
from repro.generators import make_io_workload, tasks_to_instance
from repro.io import load_schedule, save_schedule
from repro.simulation import run_workload
from repro.viz import render_components, render_schedule, schedule_svg


@pytest.fixture(scope="module")
def tasks():
    return make_io_workload(4, seed=99)


@pytest.fixture(scope="module")
def instance(tasks):
    return tasks_to_instance(tasks, unit_split=True)


@pytest.fixture(scope="module")
def schedules(instance):
    return {
        name: get_policy(name).run(instance) for name in available_policies()
    }


class TestPipeline:
    def test_all_policies_verify(self, schedules):
        for name, sched in schedules.items():
            report = verify_schedule(sched)
            assert report.ok, (name, report.problems)

    def test_metrics_consistent(self, instance, schedules):
        lb = best_lower_bound(instance)
        for name, sched in schedules.items():
            metrics = compute_metrics(sched)
            assert metrics.makespan >= lb, name
            assert metrics.lower_bound >= lb
            assert mean_completion_time(sched) <= metrics.makespan

    def test_fastpath_agrees_with_simulation(self, instance, schedules):
        assert (
            greedy_balance_makespan(instance)
            == schedules["greedy-balance"].makespan
        )

    def test_engine_agrees_with_simulator(self, tasks, schedules):
        trace = run_workload(tasks, GreedyBalance(), unit_split=True)
        assert trace.makespan == schedules["greedy-balance"].makespan

    def test_serialization_survives(self, tmp_path, schedules):
        for name, sched in schedules.items():
            path = tmp_path / f"{name}.json"
            save_schedule(sched, path)
            assert load_schedule(path) == sched

    def test_structure_and_bounds(self, instance, schedules):
        gb = schedules["greedy-balance"]
        graph = SchedulingGraph(gb)
        assert graph.check_observation_2()
        assert graph.check_lemma_2()
        m = instance.num_processors
        cert = best_lower_bound(instance, gb)
        assert gb.makespan <= (2 - Fraction(1, m)) * max(cert, 1) + 1

    def test_lemma1_normalization_applies(self, schedules):
        rr = schedules["round-robin"]
        nice = make_nice(rr)
        assert is_nice(nice)
        assert nice.makespan <= rr.makespan

    def test_rendering_works_for_all(self, schedules):
        for sched in schedules.values():
            assert "makespan" in render_schedule(sched)
            assert schedule_svg(sched).startswith("<svg")
        graph = SchedulingGraph(schedules["greedy-balance"])
        assert "components" in render_components(graph)

    def test_exact_solver_confirms_ordering(self, instance, schedules):
        # The exact optimum lower-bounds every policy (instance is
        # small enough thanks to the 4-core workload).
        if instance.total_jobs <= 14 and instance.num_processors <= 4:
            opt = opt_res_assignment_general(instance).makespan
            for name, sched in schedules.items():
                assert sched.makespan >= opt, name
