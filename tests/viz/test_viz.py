"""Unit tests for ASCII and SVG rendering."""

import xml.etree.ElementTree as ET

import pytest

from repro.algorithms import GreedyFinishJobs
from repro.core import SchedulingGraph
from repro.generators import fig1_instance
from repro.viz import (
    hypergraph_svg,
    render_components,
    render_instance,
    render_schedule,
    render_utilization,
    schedule_svg,
    series_svg,
)


@pytest.fixture
def fig1_schedule():
    return GreedyFinishJobs().run(fig1_instance())


class TestAscii:
    def test_instance_grid(self):
        text = render_instance(fig1_instance())
        assert "p0 | 20 10 10 10" in text
        assert "p1 | 50 55 90 55 10" in text
        assert "p2 | 50 40 95" in text

    def test_schedule_contains_makespan(self, fig1_schedule):
        text = render_schedule(fig1_schedule, max_width=200)
        assert f"makespan = {fig1_schedule.makespan}" in text
        assert text.startswith("t")

    def test_components_summary(self, fig1_schedule):
        graph = SchedulingGraph(fig1_schedule)
        text = render_components(graph)
        assert "N = 3 components" in text
        assert "C1:" in text and "C3:" in text

    def test_utilization_bars(self, fig1_schedule):
        text = render_utilization(fig1_schedule)
        assert text.count("t=") == fig1_schedule.makespan
        assert "100.0%" in text  # the full steps


class TestSvg:
    def _parse(self, svg: str) -> ET.Element:
        return ET.fromstring(svg)

    def test_schedule_svg_is_valid_xml(self, fig1_schedule):
        root = self._parse(schedule_svg(fig1_schedule, title="test"))
        assert root.tag.endswith("svg")

    def test_schedule_svg_has_a_rect_per_active_cell(self, fig1_schedule):
        svg = schedule_svg(fig1_schedule)
        active_cells = sum(
            1
            for t in range(fig1_schedule.makespan)
            for i in range(3)
            if fig1_schedule.step(t).active[i] is not None
        )
        assert svg.count("<rect") == active_cells

    def test_hypergraph_svg_nodes(self, fig1_schedule):
        graph = SchedulingGraph(fig1_schedule)
        svg = hypergraph_svg(graph)
        self._parse(svg)
        assert svg.count("<circle") == fig1_schedule.instance.total_jobs
        # One dashed hull per time step.
        assert svg.count("stroke-dasharray") == fig1_schedule.makespan

    def test_series_svg(self):
        svg = series_svg(
            {"a": [(1, 1.0), (2, 1.5)], "b": [(1, 2.0), (2, 2.0)]},
            title="t",
            xlabel="x",
            ylabel="y",
        )
        self._parse(svg)
        assert svg.count("<path") == 2

    def test_series_svg_empty_rejected(self):
        with pytest.raises(ValueError):
            series_svg({})

    def test_series_svg_degenerate_ranges(self):
        svg = series_svg({"a": [(1, 1.0)]})
        self._parse(svg)


class TestDeadlineRendering:
    """Deadline markers and lateness shading (the DEADLINE satellite)."""

    @pytest.fixture
    def late_schedule(self):
        from repro.algorithms import get_policy
        from repro.core import Instance

        inst = Instance.from_percent([[100], [100]]).with_deadlines([[1], [1]])
        return get_policy("greedy-balance").run(inst)

    def test_render_instance_shows_deadlines(self, late_schedule):
        out = render_instance(late_schedule.instance)
        assert "(d1)" in out

    def test_render_schedule_marks_late_completions(self, late_schedule):
        out = render_schedule(late_schedule)
        assert "!" in out
        assert "1 late job(s), total tardiness = 1" in out

    def test_render_schedule_plain_is_unchanged(self, fig1_schedule):
        out = render_schedule(fig1_schedule)
        assert "!" not in out
        assert "deadline" not in out

    def test_svg_has_markers_and_shading(self, late_schedule):
        svg = schedule_svg(late_schedule, title="late")
        assert "stroke-dasharray=\"5 3\"" in svg  # deadline marker
        assert "#c0392b" in svg  # lateness accent
        assert "late job(s)" in svg
        ET.fromstring(svg)  # well-formed XML

    def test_svg_plain_has_no_deadline_artifacts(self, fig1_schedule):
        svg = schedule_svg(fig1_schedule)
        assert "#c0392b" not in svg
        assert "late job(s)" not in svg

    def test_all_deadlines_met_renders_clean_summary(self):
        from repro.algorithms import get_policy
        from repro.core import Instance

        inst = Instance.from_percent([[100], [100]]).with_deadlines([[9], [9]])
        sched = get_policy("greedy-balance").run(inst)
        out = render_schedule(sched)
        assert "0 late job(s)" in out
        assert "!" not in out
