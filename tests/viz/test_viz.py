"""Unit tests for ASCII and SVG rendering."""

import xml.etree.ElementTree as ET

import pytest

from repro.algorithms import GreedyFinishJobs
from repro.core import SchedulingGraph
from repro.generators import fig1_instance
from repro.viz import (
    hypergraph_svg,
    render_components,
    render_instance,
    render_schedule,
    render_utilization,
    schedule_svg,
    series_svg,
)


@pytest.fixture
def fig1_schedule():
    return GreedyFinishJobs().run(fig1_instance())


class TestAscii:
    def test_instance_grid(self):
        text = render_instance(fig1_instance())
        assert "p0 | 20 10 10 10" in text
        assert "p1 | 50 55 90 55 10" in text
        assert "p2 | 50 40 95" in text

    def test_schedule_contains_makespan(self, fig1_schedule):
        text = render_schedule(fig1_schedule, max_width=200)
        assert f"makespan = {fig1_schedule.makespan}" in text
        assert text.startswith("t")

    def test_components_summary(self, fig1_schedule):
        graph = SchedulingGraph(fig1_schedule)
        text = render_components(graph)
        assert "N = 3 components" in text
        assert "C1:" in text and "C3:" in text

    def test_utilization_bars(self, fig1_schedule):
        text = render_utilization(fig1_schedule)
        assert text.count("t=") == fig1_schedule.makespan
        assert "100.0%" in text  # the full steps


class TestSvg:
    def _parse(self, svg: str) -> ET.Element:
        return ET.fromstring(svg)

    def test_schedule_svg_is_valid_xml(self, fig1_schedule):
        root = self._parse(schedule_svg(fig1_schedule, title="test"))
        assert root.tag.endswith("svg")

    def test_schedule_svg_has_a_rect_per_active_cell(self, fig1_schedule):
        svg = schedule_svg(fig1_schedule)
        active_cells = sum(
            1
            for t in range(fig1_schedule.makespan)
            for i in range(3)
            if fig1_schedule.step(t).active[i] is not None
        )
        assert svg.count("<rect") == active_cells

    def test_hypergraph_svg_nodes(self, fig1_schedule):
        graph = SchedulingGraph(fig1_schedule)
        svg = hypergraph_svg(graph)
        self._parse(svg)
        assert svg.count("<circle") == fig1_schedule.instance.total_jobs
        # One dashed hull per time step.
        assert svg.count("stroke-dasharray") == fig1_schedule.makespan

    def test_series_svg(self):
        svg = series_svg(
            {"a": [(1, 1.0), (2, 1.5)], "b": [(1, 2.0), (2, 2.0)]},
            title="t",
            xlabel="x",
            ylabel="y",
        )
        self._parse(svg)
        assert svg.count("<path") == 2

    def test_series_svg_empty_rejected(self):
        with pytest.raises(ValueError):
            series_svg({})

    def test_series_svg_degenerate_ranges(self):
        svg = series_svg({"a": [(1, 1.0)]})
        self._parse(svg)
