"""The Theorem 4 gadget optimum is *proved*, not merely found.

The ORDER experiment observes that policies on the as-built gadget
order need 5 steps while local search recovers 4 -- but a hill-climb
finding 4 only shows 4 is *achievable*.  This regression pins the
certified fact: on planted Partition YES gadgets the branch-and-bound
certifier proves that no queue order beats 4, bit-identically (same
witness, same search counters) on every run.
"""

import pytest

from repro.analysis import certify_opt
from repro.reductions import random_yes_instance, reduction_instance

#: Makespan the reduction proves optimal for YES partition instances.
GADGET_OPT = 4

#: Partition size used by the pinned certificates (matches OPTGAP's
#: default; size 6 -- the ORDER experiment default -- is out of reach
#: for the per-order exact oracles, which is exactly why ORDER could
#: only ever *observe* the 5 -> 4 gap).
GADGET_SIZE = 4


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_gadget_optimum_is_proved_bit_identically(seed):
    partition, witness = random_yes_instance(GADGET_SIZE, seed=seed)
    gadget = reduction_instance(partition)
    cert = certify_opt(gadget)
    # The claim itself: 4 is optimal, with a closed proof.
    assert cert.proved
    assert cert.value == GADGET_OPT
    assert cert.mode == "exact"
    # Bit-identical pin of the proof shape: the as-built YES gadget
    # order already meets the Observation 1 work bound of 4, so the
    # search must close at the root -- zero expansions, the identity
    # witness, and exactly the three distinct seed-order evaluations.
    assert cert.nodes == 0
    assert cert.bound_calls == 0
    assert cert.pruned == 0
    assert cert.leaf_evaluations == 3
    assert cert.lower_bound == GADGET_OPT
    assert cert.order == tuple(
        tuple(range(3)) for _ in range(GADGET_SIZE)
    )
    assert cert.order_space == 6**GADGET_SIZE


def test_gadget_certificate_floor_holds_for_policies(seed=0):
    from repro.core.simulator import run_policy

    partition, _ = random_yes_instance(GADGET_SIZE, seed=seed)
    gadget = reduction_instance(partition)
    cert = certify_opt(gadget)
    for policy in ("round-robin", "greedy-balance"):
        span = run_policy(
            gadget, policy, backend="vector", record_shares=False
        ).makespan
        assert span >= cert.value


def test_certificate_is_deterministic(seed=1):
    partition, _ = random_yes_instance(GADGET_SIZE, seed=seed)
    gadget = reduction_instance(partition)
    first = certify_opt(gadget)
    second = certify_opt(gadget)
    # Frozen dataclass equality ignores only the wall-clock field.
    assert first == second
