"""Unit tests for the Partition substrate."""

import pytest

from repro.reductions import (
    PartitionInstance,
    random_no_instance,
    random_yes_instance,
    solve_partition_bruteforce,
    solve_partition_dp,
)


class TestPartitionInstance:
    def test_basic(self):
        inst = PartitionInstance([3, 5, 2])
        assert inst.total == 10
        assert inst.half == 5
        assert inst.is_balanced_total

    def test_odd_total(self):
        assert not PartitionInstance([1, 2]).is_balanced_total

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PartitionInstance([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            PartitionInstance([1, 0])
        with pytest.raises(ValueError):
            PartitionInstance([-3])


class TestSolvers:
    def test_yes_case(self):
        inst = PartitionInstance([3, 5, 2])
        for solver in (solve_partition_bruteforce, solve_partition_dp):
            witness = solver(inst)
            assert witness is not None
            assert sum(inst.values[i] for i in witness) == 5

    def test_no_case(self):
        inst = PartitionInstance([7, 1, 2])  # even total, no split
        assert solve_partition_bruteforce(inst) is None
        assert solve_partition_dp(inst) is None

    def test_odd_total_is_no(self):
        inst = PartitionInstance([1, 2, 4])
        assert solve_partition_dp(inst) is None

    def test_singleton_no(self):
        assert solve_partition_dp(PartitionInstance([4])) is None

    def test_pair_yes(self):
        witness = solve_partition_dp(PartitionInstance([4, 4]))
        assert witness is not None and len(witness) == 1

    @pytest.mark.parametrize("seed", range(20))
    def test_solvers_agree_on_random_inputs(self, seed):
        import random

        rng = random.Random(seed)
        values = [rng.randint(1, 12) for _ in range(rng.randint(2, 9))]
        inst = PartitionInstance(values)
        bf = solve_partition_bruteforce(inst)
        dp = solve_partition_dp(inst)
        assert (bf is None) == (dp is None)
        if dp is not None:
            assert sum(inst.values[i] for i in dp) == inst.half


class TestGenerators:
    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_yes_instances_are_yes_with_exact_n(self, n, seed):
        inst, witness = random_yes_instance(n, seed=seed)
        assert len(inst.values) == n
        assert sum(inst.values[i] for i in witness) == inst.half
        assert solve_partition_dp(inst) is not None

    @pytest.mark.parametrize("n", [3, 4, 6])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_no_instances_are_nontrivial_no(self, n, seed):
        inst = random_no_instance(n, seed=seed)
        assert len(inst.values) == n
        assert inst.is_balanced_total  # non-trivial: even total
        assert max(inst.values) <= inst.half  # gadget-compatible
        assert solve_partition_dp(inst) is None

    def test_seeded_reproducibility(self):
        a, _ = random_yes_instance(5, seed=3)
        b, _ = random_yes_instance(5, seed=3)
        assert a == b
