"""Unit tests for the Theorem 4 reduction."""

from fractions import Fraction

import pytest

from repro.algorithms import brute_force_makespan, opt_res_assignment_general
from repro.core import frac_sum
from repro.reductions import (
    INAPPROXIMABILITY_GAP,
    PartitionInstance,
    default_epsilon,
    reduction_instance,
    verify_reduction,
    yes_witness_schedule,
)

YES = PartitionInstance([3, 5, 2])
YES_WITNESS = (0, 2)  # 3 + 2 = 5
# Non-trivial NO: even total (10), every value <= A = 5, no subset
# sums to 5.
NO = PartitionInstance([3, 3, 3, 1])


class TestGadgetConstruction:
    def test_shape(self):
        inst = reduction_instance(YES)
        assert inst.num_processors == 3
        assert all(inst.num_jobs(i) == 3 for i in range(3))

    def test_values(self):
        eps = default_epsilon(YES)  # 1/6
        delta = 3 * eps  # 1/2
        denom = 5 + delta  # A + delta = 11/2
        inst = reduction_instance(YES)
        assert inst.requirement(0, 0) == Fraction(3) / denom
        assert inst.requirement(0, 1) == eps / denom
        assert inst.requirement(0, 2) == inst.requirement(0, 0)

    def test_first_column_does_not_fit_one_step(self):
        inst = reduction_instance(YES)
        total = frac_sum(inst.requirement(i, 0) for i in range(3))
        assert total > 1

    def test_custom_epsilon_bounds(self):
        reduction_instance(YES, Fraction(1, 100))
        with pytest.raises(ValueError, match="epsilon"):
            reduction_instance(YES, Fraction(1, 2))  # >= 1/n
        with pytest.raises(ValueError, match="epsilon"):
            reduction_instance(YES, Fraction(0))

    def test_rejects_odd_total(self):
        with pytest.raises(ValueError, match="even total"):
            reduction_instance(PartitionInstance([1, 2]))

    def test_rejects_oversized_value(self):
        # 7 > A = 5: the gadget requirement would exceed 1.
        with pytest.raises(ValueError, match="<= A"):
            reduction_instance(PartitionInstance([7, 1, 2]))


class TestBiconditional:
    def test_yes_witness_is_four_steps(self):
        schedule = yes_witness_schedule(YES, YES_WITNESS)
        assert schedule.makespan == 4

    def test_yes_witness_rejects_bad_subset(self):
        with pytest.raises(ValueError, match="witness"):
            yes_witness_schedule(YES, (0,))

    def test_yes_opt_is_exactly_four(self):
        inst = reduction_instance(YES)
        assert brute_force_makespan(inst) == 4

    def test_no_opt_is_at_least_five(self):
        inst = reduction_instance(NO)
        assert brute_force_makespan(inst) >= 5

    @pytest.mark.parametrize("seed", [0, 1])
    def test_verify_reduction_on_random(self, seed):
        from repro.reductions import random_no_instance, random_yes_instance

        def oracle(instance) -> int:
            return opt_res_assignment_general(instance).makespan

        yes, _ = random_yes_instance(4, seed=seed)
        result = verify_reduction(yes, optimal_makespan=oracle)
        assert result["is_yes"] and result["opt"] == 4 and result["consistent"]

        no = random_no_instance(4, seed=seed)
        result = verify_reduction(no, optimal_makespan=oracle)
        assert not result["is_yes"] and result["opt"] >= 5 and result["consistent"]

    def test_gap_constant(self):
        assert INAPPROXIMABILITY_GAP == Fraction(5, 4)
