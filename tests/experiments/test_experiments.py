"""Integration tests: every experiment runs and reproduces its claim.

These are the repository's headline checks -- each experiment's
``verdict`` is the machine-checked statement that the paper's
figure/theorem reproduces.  Parameters are scaled down for test speed;
the benchmarks run the full sweeps.
"""

import pytest

from repro.experiments import EXPERIMENTS, get_experiment
from repro.experiments.runner import format_table


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "FIG1",
            "FIG2",
            "FIG3",
            "FIG4",
            "FIG5",
            "THM3",
            "THM5",
            "THM6",
            "THM7",
            "LEM",
            "SIM",
            "GEN",
            "ABL",
            "CONT",
            "ARR",
            "MULTIRES",
            "FLOW",
            "DEADLINE",
            "ORDER",
            "OPTGAP",
        }

    def test_lookup_case_insensitive(self):
        assert get_experiment("fig3").id == "FIG3"

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("FIG9")


class TestVerdicts:
    """Each experiment reproduces the paper's claim (small params)."""

    def test_fig1(self):
        assert get_experiment("FIG1").run().verdict

    def test_fig2(self):
        assert get_experiment("FIG2").run().verdict

    def test_fig3(self):
        result = get_experiment("FIG3").run(sizes=(4, 8, 16))
        assert result.verdict
        ratios = [row["ratio"] for row in result.rows]
        assert ratios == sorted(ratios)  # climbing toward 2

    def test_fig4(self):
        assert get_experiment("FIG4").run(sizes=(3,), seeds=(0, 1)).verdict

    def test_fig5(self):
        assert get_experiment("FIG5").run(
            ms=(2, 3), block_counts=(2, 4, 8)
        ).verdict

    def test_thm3(self):
        assert get_experiment("THM3").run(
            configs=((2, 4), (3, 2)), seeds=(0, 1)
        ).verdict

    def test_thm5(self):
        result = get_experiment("THM5").run(
            check_sizes=(2, 3),
            scale_sizes=(40, 80, 160),
            seeds=(0, 1),
            repeats=1,
        )
        assert result.verdict

    def test_thm6(self):
        assert get_experiment("THM6").run(
            configs=((2, 3), (3, 2)), seeds=(0, 1)
        ).verdict

    def test_thm7(self):
        assert get_experiment("THM7").run(
            ms=(2, 3), n=4, seeds=(0, 1, 2), exact_upto_m=2
        ).verdict

    def test_lemmas(self):
        assert get_experiment("LEM").run(
            configs=((2, 3), (3, 2)), seeds=(0, 1)
        ).verdict

    def test_sim(self):
        assert get_experiment("SIM").run(num_cores=5, seeds=(0,)).verdict

    def test_flow(self):
        result = get_experiment("FLOW").run(
            m=4, n=4, rates=(0.5, 2.0), count=4
        )
        assert result.verdict
        # weighted-srpt beats round-robin at every swept rate.
        flows = {
            (row["rate"], row["policy"]): row["mean_flow"]
            for row in result.rows
        }
        for rate in (0.5, 2.0):
            assert flows[(rate, "weighted-srpt")] < flows[(rate, "round-robin")]

    def test_deadline(self):
        result = get_experiment("DEADLINE").run(
            m=4, n=4, profiles=("tight", "loose"), count=4
        )
        assert result.verdict
        tardiness = {
            (row["profile"], row["policy"]): row["mean_tardiness"]
            for row in result.rows
        }
        for profile in ("tight", "loose"):
            assert (
                tardiness[(profile, "edf-waterfill")]
                < tardiness[(profile, "round-robin")]
            )


class TestResultPlumbing:
    def test_to_text_renders(self):
        result = get_experiment("FIG1").run()
        text = result.to_text()
        assert "FIG1" in text and "REPRODUCED" in text

    def test_to_csv(self, tmp_path):
        result = get_experiment("FIG1").run()
        path = tmp_path / "fig1.csv"
        result.to_csv(path)
        content = path.read_text().splitlines()
        assert content[0].startswith("component")
        assert len(content) == len(result.rows) + 1

    def test_series_extraction(self):
        result = get_experiment("FIG3").run(sizes=(4, 8))
        series = result.series("n", "ratio")
        assert len(series) == 2
        assert series[0][0] == 4.0

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [{"a": 1, "bb": "xyz"}])
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[0].index("bb") == lines[2].index("xyz")
