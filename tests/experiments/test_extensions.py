"""Integration tests for the extension experiments (GEN, ABL, CONT, MULTIRES)."""

import pytest

from repro.experiments import EXPERIMENTS, get_experiment


class TestRegistered:
    def test_extensions_registered(self):
        for eid in ("GEN", "ABL", "CONT", "MULTIRES"):
            assert eid in EXPERIMENTS


class TestMultires:
    @pytest.fixture(scope="class")
    def result(self):
        return get_experiment("MULTIRES").run(
            m=4, n=4, resources=(1, 2), seeds=(0, 1)
        )

    def test_verdict(self, result):
        assert result.verdict

    def test_covers_every_k(self, result):
        assert {row["k"] for row in result.rows} == {1, 2}

    def test_ratios_respect_lower_bound(self, result):
        for row in result.rows:
            assert row["mean_ratio"] >= 1.0

    def test_exact_backend_accepted(self):
        result = get_experiment("MULTIRES").run(
            m=3, n=3, resources=(2,), seeds=(0,), backend="exact"
        )
        assert result.verdict


class TestGen:
    def test_general_sizes_guarantees_hold(self):
        result = get_experiment("GEN").run(
            configs=((2, 2), (3, 2)), seeds=(0, 1)
        )
        assert result.verdict
        for row in result.rows:
            assert row["worst_GB/OPT"] <= row["GB_guarantee"]
            assert row["worst_RR/OPT"] <= row["RR_guarantee"]


class TestAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return get_experiment("ABL").run(ms=(2, 3), blocks=4, seeds=(0, 1))

    def test_verdict(self, result):
        assert result.verdict

    def test_balanced_variants_stay_balanced(self, result):
        for row in result.rows:
            if row["policy"] in ("greedy-balance", "gb-small-tie"):
                assert row["always_balanced"]
                assert row["within_guarantee"]

    def test_some_unbalanced_variant_detected(self, result):
        unbalanced = [
            row
            for row in result.rows
            if row["policy"] not in ("greedy-balance", "gb-small-tie")
        ]
        assert any(not row["always_balanced"] for row in unbalanced)


class TestCont:
    @pytest.fixture(scope="class")
    def result(self):
        return get_experiment("CONT").run(configs=((2, 3), (3, 3)), seeds=(0, 1))

    def test_verdict(self, result):
        assert result.verdict

    def test_bounds_respected(self, result):
        for row in result.rows:
            assert row["fluid_GB"] >= row["cont_LB"] - 1e-9

    def test_hard_instance_row_present(self, result):
        rows = [r for r in result.rows if r["family"] == "forced-idle chains"]
        assert rows and rows[0]["fluid_GB"] == 3.0
