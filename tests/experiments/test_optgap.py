"""Integration tests for the OPTGAP experiment (certified gaps)."""

import pytest

from repro.experiments import EXPERIMENTS, get_experiment
from repro.experiments.runner import run_experiment


class TestRegistered:
    def test_optgap_registered(self):
        assert "OPTGAP" in EXPERIMENTS


class TestOptgap:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment(
            get_experiment("OPTGAP"), seeds=(0, 1), budget=80
        )

    def test_reproduced_verdict(self, result):
        assert result.verdict is True

    def test_all_certificates_proved(self, result):
        for row in result.rows:
            assert row["proved"] == 2  # one proof per seed

    def test_gap_rows_cover_every_sequencer(self, result):
        measures = {row["measure"] for row in result.rows}
        for name in ("fixed", "spt", "lpt", "requirement-desc", "local-search"):
            assert f"gap:{name}" in measures

    def test_local_search_gap_at_most_fixed(self, result):
        by_measure = {
            (row["family"], row["measure"]): row for row in result.rows
        }
        for family in ("uniform", "gadget-yes"):
            ls = by_measure[(family, "gap:local-search")]["mean_gap_pct"]
            fixed = by_measure[(family, "gap:fixed")]["mean_gap_pct"]
            assert ls <= fixed

    def test_ratio_rows_respect_theorem_bounds(self, result):
        for row in result.rows:
            if row["measure"] == "ratio:round-robin":
                assert row["worst_ratio"] <= 2.0
            if row["measure"] == "ratio:greedy-balance":
                assert row["worst_ratio"] <= 2.0  # 2 - 1/m <= 2

    def test_gadget_opt_is_four(self, result):
        for row in result.rows:
            if row["family"] == "gadget-yes":
                assert row["mean_opt"] == 4.0

    def test_gaps_are_never_negative(self, result):
        for row in result.rows:
            if row["mean_gap_pct"] != "":
                assert row["mean_gap_pct"] >= 0.0
