"""Regenerate ``certified_instances.json`` (golden certified OPT values).

Run from the repo root with
``PYTHONPATH=src python tests/data/make_certified.py``.

The file pins, for a fixed set of certified-hard instances (instances
where the branch-and-bound actually has to expand nodes, plus the
planted Theorem 4 gadgets where it closes at the root), the full
optimality certificate: the certified OPT value, the witness order,
and the search counters.  The replay test
(``tests/data/test_certified_replay.py``) re-certifies every instance
and demands bit-identical certificates, so the file guards two things
at once:

* the certifier itself -- any change to the bound, the symmetry
  breaking, or the seed orders that alters a certificate is surfaced;
* the kernel and exact oracles -- a semantics change that moves any
  OPT value breaks the replay before it can silently skew experiments.

Regenerate only when the *model semantics* intentionally change, and
say so in the commit message.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis import certify_opt
from repro.core import Instance
from repro.generators import uniform_instance
from repro.io import instance_from_dict, instance_to_dict
from repro.reductions import random_yes_instance, reduction_instance

CERTIFIED_PATH = Path(__file__).parent / "certified_instances.json"


def _tight_instance(seed: int) -> Instance:
    """Small instances whose certification needs real search work."""
    return uniform_instance(2, 4, grid=7, seed=seed)


def _wide_instance(seed: int) -> Instance:
    return uniform_instance(3, 3, grid=5, seed=seed)


#: (case id, instance factory) -- all within the exact oracles' model.
CASES = [
    *[
        (f"uniform-2x4-g7-s{s}", lambda s=s: _tight_instance(s))
        for s in range(6)
    ],
    *[
        (f"uniform-3x3-g5-s{s}", lambda s=s: _wide_instance(s))
        for s in range(4)
    ],
    *[
        (
            f"gadget-yes-4-s{s}",
            lambda s=s: reduction_instance(random_yes_instance(4, seed=s)[0]),
        )
        for s in range(2)
    ],
    (
        "adversarial-pairing",
        lambda: Instance(
            [["9/10", "1/10", "9/10"], ["9/10", "1/10", "1/10"]]
        ),
    ),
    (
        "equal-jobs-symmetry",
        lambda: Instance([["1/2"] * 3, ["1/2"] * 3]),
    ),
]


def build() -> dict:
    cases = []
    for case_id, factory in CASES:
        instance = factory()
        cert = certify_opt(instance)
        assert cert.proved, f"{case_id}: certificate must be proved"
        summary = cert.summary()
        summary.pop("seconds")  # wall time is not part of the pin
        cases.append(
            {
                "id": case_id,
                "instance": instance_to_dict(instance),
                "certificate": summary,
            }
        )
    return {"format": "crsharing-certified-instances", "version": 1, "cases": cases}


def main() -> None:
    doc = build()
    CERTIFIED_PATH.write_text(json.dumps(doc, indent=2) + "\n")
    searched = sum(
        1 for case in doc["cases"] if case["certificate"]["nodes"] > 0
    )
    print(
        f"wrote {len(doc['cases'])} certified cases "
        f"({searched} needed node expansions) to {CERTIFIED_PATH}"
    )
    # Sanity: the stored instances round-trip.
    for case in doc["cases"]:
        instance_from_dict(case["instance"])


if __name__ == "__main__":
    main()
