"""Replay the golden certified instances (tier-1 certification guard).

Every case in ``certified_instances.json`` is re-certified from
scratch and must reproduce its stored certificate bit-identically --
value, witness order, and search counters.  A drift in the OPT value
means the kernel or the exact oracles changed semantics; a drift in
the counters means the branch-and-bound (bounds, symmetry breaking,
seed orders) changed behavior.  Both must be deliberate, regenerated
via ``tests/data/make_certified.py``, and called out in the commit.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import certify_opt
from repro.core.simulator import run_policy
from repro.io import instance_from_dict

CERTIFIED_PATH = Path(__file__).parent / "certified_instances.json"
DOC = json.loads(CERTIFIED_PATH.read_text())
CASES = {case["id"]: case for case in DOC["cases"]}


def test_store_shape():
    assert DOC["format"] == "crsharing-certified-instances"
    assert len(CASES) == len(DOC["cases"]) >= 10
    # The suite must contain genuinely searched cases, not only
    # root-closed ones -- otherwise the bound/symmetry machinery has
    # no golden coverage.
    assert sum(1 for c in CASES.values() if c["certificate"]["nodes"] > 0) >= 3


@pytest.mark.parametrize("case_id", sorted(CASES))
def test_certificate_replays_bit_identically(case_id):
    case = CASES[case_id]
    instance = instance_from_dict(case["instance"])
    pinned = case["certificate"]
    cert = certify_opt(instance)
    fresh = cert.summary()
    fresh.pop("seconds")
    assert fresh == pinned
    assert cert.proved


@pytest.mark.parametrize("case_id", sorted(CASES))
def test_certified_value_floors_a_policy_run(case_id):
    case = CASES[case_id]
    instance = instance_from_dict(case["instance"])
    span = run_policy(
        instance, "greedy-balance", backend="vector", record_shares=False
    ).makespan
    assert span >= case["certificate"]["value"]
