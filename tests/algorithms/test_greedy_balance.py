"""Unit tests for GreedyBalance (Section 8.3, Theorems 7 and 8)."""

from fractions import Fraction

import pytest

from repro.algorithms import GreedyBalance, opt_res_assignment
from repro.core import SchedulingGraph, theorem7_reference
from repro.core.properties import is_balanced, is_non_wasting, is_progressive
from repro.generators import (
    greedy_balance_adversarial,
    greedy_balance_witness_schedule,
    ragged_instance,
    uniform_instance,
)


class TestInvariantsByConstruction:
    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("m", [2, 3, 5])
    def test_balanced_non_wasting_progressive(self, m, seed):
        inst = uniform_instance(m, 4, seed=seed)
        sched = GreedyBalance().run(inst)
        assert is_balanced(sched)
        assert is_non_wasting(sched)
        assert is_progressive(sched)

    @pytest.mark.parametrize("seed", range(5))
    def test_ragged_queues_keep_invariants(self, seed):
        inst = ragged_instance(4, (1, 6), seed=seed)
        sched = GreedyBalance().run(inst)
        assert is_balanced(sched)
        assert is_non_wasting(sched)
        assert is_progressive(sched)


class TestPriorityOrder:
    def test_more_jobs_first(self):
        from repro.core import ExecState, Instance

        inst = Instance.from_requirements([["9/10"], ["9/10", "9/10"]])
        shares = GreedyBalance().shares(ExecState(inst))
        # p1 has more remaining jobs: served fully first.
        assert shares[1] == Fraction(9, 10)
        assert shares[0] == Fraction(1, 10)

    def test_tie_break_larger_requirement(self):
        from repro.core import ExecState, Instance

        inst = Instance.from_requirements([["1/2"], ["3/4"]])
        shares = GreedyBalance().shares(ExecState(inst))
        assert shares[1] == Fraction(3, 4)
        assert shares[0] == Fraction(1, 4)

    def test_final_tie_break_by_index(self):
        from repro.core import ExecState, Instance

        inst = Instance.from_requirements([["3/4"], ["3/4"]])
        shares = GreedyBalance().shares(ExecState(inst))
        assert shares[0] == Fraction(3, 4)
        assert shares[1] == Fraction(1, 4)


class TestTheorem8WorstCase:
    @pytest.mark.parametrize("m,blocks", [(2, 3), (3, 3), (4, 2), (5, 2)])
    def test_block_makespans(self, m, blocks):
        inst = greedy_balance_adversarial(m, blocks)
        gb = GreedyBalance().run(inst)
        witness = greedy_balance_witness_schedule(inst, m)
        assert gb.makespan == (2 * m - 1) * blocks
        assert witness.makespan == inst.max_jobs + m - 1

    def test_figure5_values(self):
        """The exact percent labels of Figure 5 (m=3, eps=1/100)."""
        inst = greedy_balance_adversarial(3, 3, Fraction(1, 100))
        rows = [[int(r * 100) for r in inst.requirements(i)] for i in range(3)]
        assert rows[0] == [99, 7, 1, 98, 13, 1, 98, 19, 1]
        assert rows[1] == [98, 1, 1, 98, 1, 1, 98, 1, 1]
        assert rows[2] == [97, 1, 1, 92, 1, 1, 86, 1, 1]

    def test_ratio_below_guarantee(self):
        for m in (2, 3, 4):
            inst = greedy_balance_adversarial(m, 4)
            gb = GreedyBalance().run(inst)
            witness = greedy_balance_witness_schedule(inst, m)
            assert Fraction(gb.makespan, witness.makespan) < 2 - Fraction(1, m)


class TestTheorem7Guarantee:
    @pytest.mark.parametrize("seed", range(8))
    def test_vs_exact_optimum_m2(self, seed):
        inst = uniform_instance(2, 5, seed=seed)
        gb = GreedyBalance().run(inst)
        opt = opt_res_assignment(inst).makespan
        assert Fraction(gb.makespan, opt) <= Fraction(3, 2)

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("m", [2, 3, 4])
    def test_vs_theorem7_reference(self, m, seed):
        inst = uniform_instance(m, 5, seed=seed)
        gb = GreedyBalance().run(inst)
        graph = SchedulingGraph(gb)
        assert gb.makespan <= (2 - Fraction(1, m)) * theorem7_reference(graph)
