"""Unit tests for the objective-aware policies (EDF / weighted SRPT)."""

from fractions import Fraction

import pytest

from repro.algorithms import (
    EDFWaterfill,
    GreedyFinishJobs,
    WeightedSRPT,
    available_policies,
    get_policy,
)
from repro.backends import cross_validate
from repro.core import ExecState, Instance
from repro.core.properties import is_non_wasting, is_progressive
from repro.generators import (
    multi_resource_instance,
    uniform_instance,
    with_deadlines,
    with_weights,
)


class TestRegistration:
    def test_registered_with_vector_paths(self):
        for name in ("edf-waterfill", "weighted-srpt"):
            assert name in available_policies()
            assert get_policy(name).supports_vector


class TestEDFWaterfill:
    def test_earliest_deadline_drinks_first(self):
        inst = Instance.from_requirements(
            [["9/10"], ["9/10"]]
        ).with_deadlines([[9], [1]])
        shares = EDFWaterfill().shares(ExecState(inst))
        assert shares[1] == Fraction(9, 10)  # urgent job gets its fill
        assert shares[0] == Fraction(1, 10)  # leftover only

    def test_deadline_free_jobs_queue_last(self):
        inst = Instance.from_requirements(
            [["9/10"], ["9/10"]]
        ).with_deadlines([[None], [7]])
        shares = EDFWaterfill().shares(ExecState(inst))
        assert shares[1] == Fraction(9, 10)

    def test_ties_broken_by_remaining_work(self):
        inst = Instance.from_requirements(
            [["8/10"], ["3/10"]]
        ).with_deadlines([[5], [5]])
        shares = EDFWaterfill().shares(ExecState(inst))
        # Equal deadlines: the cheaper job completes first.
        assert shares[1] == Fraction(3, 10)
        assert shares[0] == Fraction(7, 10)

    def test_schedules_stay_nice(self):
        inst = with_deadlines(uniform_instance(3, 4, seed=2), profile="tight", seed=2)
        schedule = EDFWaterfill().run(inst)
        assert is_non_wasting(schedule)
        assert is_progressive(schedule)

    def test_reduces_tardiness_vs_reverse_priority(self):
        from repro.objectives import Tardiness

        inst = with_deadlines(uniform_instance(4, 4, seed=3), profile="mixed", seed=3)
        edf = Tardiness().value(EDFWaterfill().run(inst))
        rr = Tardiness().value(get_policy("round-robin").run(inst))
        assert edf <= rr

    @pytest.mark.parametrize("k", [2, 3])
    def test_multi_resource_runs(self, k):
        inst = multi_resource_instance(3, 3, k, seed=1)
        result = EDFWaterfill().run_backend(inst, backend="exact")
        assert result.makespan >= inst.makespan_lower_bound()


class TestWeightedSRPT:
    def test_weight_density_order(self):
        inst = Instance.from_requirements(
            [["8/10"], ["8/10"]]
        ).with_weights([[1], [8]])
        shares = WeightedSRPT().shares(ExecState(inst))
        # Same remaining work, higher weight -> smaller density, first.
        assert shares[1] == Fraction(8, 10)
        assert shares[0] == Fraction(2, 10)

    def test_unit_weights_reproduce_greedy_finish_jobs(self):
        for seed in range(10):
            inst = uniform_instance(3, 4, seed=seed)
            a = WeightedSRPT().run(inst)
            b = GreedyFinishJobs().run(inst)
            assert [s.shares for s in a.steps] == [s.shares for s in b.steps]

    def test_schedules_stay_nice(self):
        inst = with_weights(uniform_instance(3, 4, seed=4), profile="skewed", seed=4)
        schedule = WeightedSRPT().run(inst)
        assert is_non_wasting(schedule)
        assert is_progressive(schedule)

    def test_improves_weighted_flow_vs_round_robin(self):
        from repro.objectives import WeightedFlowTime

        inst = with_weights(uniform_instance(4, 4, seed=5), profile="skewed", seed=5)
        srpt = WeightedFlowTime().value(WeightedSRPT().run(inst))
        rr = WeightedFlowTime().value(get_policy("round-robin").run(inst))
        assert srpt <= rr

    @pytest.mark.parametrize("k", [2, 3])
    def test_multi_resource_runs(self, k):
        inst = multi_resource_instance(3, 3, k, seed=2)
        result = WeightedSRPT().run_backend(inst, backend="exact")
        assert result.makespan >= inst.makespan_lower_bound()


class TestVectorAgreement:
    """Exact and vector paths produce the same schedules (the shared
    policy contract, on annotated instances too)."""

    @pytest.mark.parametrize("policy", ["edf-waterfill", "weighted-srpt"])
    @pytest.mark.parametrize("seed", range(20))
    def test_annotated_agreement(self, policy, seed):
        inst = with_deadlines(
            with_weights(
                uniform_instance(2 + seed % 4, 2 + seed % 4, seed=seed),
                profile="uniform",
                seed=seed,
            ),
            profile="mixed",
            seed=seed,
        )
        check = cross_validate(inst, get_policy(policy))
        assert check.ok, (policy, seed, check)
        assert check.max_share_deviation <= 1e-9

    @pytest.mark.parametrize("policy", ["edf-waterfill", "weighted-srpt"])
    @pytest.mark.parametrize("k", [2, 3])
    def test_multi_resource_agreement(self, policy, k):
        for seed in range(5):
            inst = multi_resource_instance(3, 3, k, seed=seed)
            check = cross_validate(inst, get_policy(policy))
            assert check.ok, (policy, k, seed, check)
