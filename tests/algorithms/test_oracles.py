"""Unit tests for the brute-force and MILP oracles, and the
four-way cross-validation that anchors every optimality claim."""

import pytest

from repro.algorithms import (
    brute_force_makespan,
    milp_feasible,
    milp_makespan,
    opt_res_assignment,
    opt_res_assignment_general,
)
from repro.core import Instance
from repro.exceptions import SolverError, UnitSizeRequiredError
from repro.generators import uniform_instance


class TestBruteForce:
    def test_trivial(self):
        inst = Instance.from_requirements([["1/2"]])
        assert brute_force_makespan(inst) == 1

    def test_forced_sequential(self):
        inst = Instance.from_requirements([["1"], ["1"]])
        assert brute_force_makespan(inst) == 2

    def test_exploits_pairing(self):
        inst = Instance.from_requirements([["9/10", "1/10"], ["1/10", "9/10"]])
        assert brute_force_makespan(inst) == 2

    def test_state_cap(self):
        inst = uniform_instance(3, 3, grid=97, seed=1)
        with pytest.raises(SolverError, match="states"):
            brute_force_makespan(inst, max_states=3)

    def test_rejects_general_sizes(self):
        from repro.core import Job

        with pytest.raises(UnitSizeRequiredError):
            brute_force_makespan(Instance([[Job("1/2", 2)]]))


class TestMilp:
    def test_feasibility_monotone(self):
        inst = uniform_instance(2, 3, seed=0)
        opt = milp_makespan(inst)
        assert not milp_feasible(inst, opt - 1)
        assert milp_feasible(inst, opt)
        assert milp_feasible(inst, opt + 1)

    def test_zero_horizon_infeasible(self):
        inst = Instance.from_requirements([["1/2"]])
        assert not milp_feasible(inst, 0)

    def test_general_sizes_supported(self):
        from repro.core import Job

        # One job of size 2 at requirement 1/2: work 1, speed cap 1/2
        # forces two steps.
        inst = Instance([[Job("1/2", 2)]])
        assert milp_makespan(inst, upper=4) == 2

    def test_respects_sequencing(self):
        # Two jobs on one processor can never finish in one step.
        inst = Instance.from_requirements([["1/4", "1/4"]])
        assert milp_makespan(inst, upper=3) == 2


class TestFourWayCrossValidation:
    """The anchor of all optimality claims: four independent solvers
    must agree on random instances."""

    @pytest.mark.parametrize("seed", range(8))
    def test_m2(self, seed):
        inst = uniform_instance(2, 3, grid=12, seed=seed)
        dp = opt_res_assignment(inst).makespan
        search = opt_res_assignment_general(inst).makespan
        bf = brute_force_makespan(inst)
        milp = milp_makespan(inst, upper=dp + 2)
        assert dp == search == bf == milp

    @pytest.mark.parametrize("seed", range(6))
    def test_m3(self, seed):
        inst = uniform_instance(3, 2, grid=12, seed=seed)
        search = opt_res_assignment_general(inst).makespan
        bf = brute_force_makespan(inst)
        milp = milp_makespan(inst, upper=search + 2)
        assert search == bf == milp
