"""Branch-and-bound order search vs exhaustive enumeration.

The exhaustive cross-check suite of the certification layer: on ~100
seeded tiny instances (total jobs <= 6, m <= 3, k in {1, 2}), the
branch-and-bound optimum must equal the brute-force minimum over *all*
``with_order`` permutations -- through the per-order exact oracles for
k=1, and through policy evaluation on **both** backends for the
epsilon-certified mode (which is also the only exact-order notion
available at k=2).
"""

import random

import pytest

from repro.algorithms import (
    branch_and_bound_order,
    enumerate_order_optimum,
    exact_order_makespan,
    identity_order,
    order_invariant_lower_bound,
    order_space_size,
)
from repro.core import Instance
from repro.core.simulator import run_policy
from repro.exceptions import InvalidInstanceError, SolverError
from repro.generators import multi_resource_instance

# ----------------------------------------------------------------------
# The seeded tiny-instance families (kept deliberately small: every
# instance is exhaustively enumerated as the ground truth)
# ----------------------------------------------------------------------


def _tiny_instance(seed: int) -> Instance:
    """A seeded random k=1 instance with m <= 3 and <= 6 jobs total."""
    rng = random.Random(0xC0DE + seed)
    m = rng.randint(1, 3)
    remaining = 6
    queues = []
    for i in range(m):
        budget = remaining - (m - 1 - i)  # leave >= 1 job per later queue
        count = rng.randint(1, min(3, budget))
        remaining -= count
        queues.append(
            [f"{rng.randint(1, 4)}/4" for _ in range(count)]
        )
    return Instance(queues)


K1_SEEDS = range(70)
K2_SEEDS = range(30)


def _k2_instance(seed: int) -> Instance:
    """A seeded k=2 instance small enough to enumerate (m=2, n=2)."""
    return multi_resource_instance(
        2, 2, 2, profile="independent", grid=4, seed=seed
    )


def _policy_evaluator(policy: str, backend: str):
    def evaluate(inst: Instance) -> int:
        return run_policy(
            inst, policy, backend=backend, record_shares=False
        ).makespan

    return evaluate


# ----------------------------------------------------------------------
# Satellite 1: exhaustive cross-check, exact oracles (k=1)
# ----------------------------------------------------------------------
class TestExhaustiveExactMode:
    @pytest.mark.parametrize("seed", K1_SEEDS)
    def test_bb_equals_enumeration(self, seed):
        inst = _tiny_instance(seed)
        bb = branch_and_bound_order(inst)
        en = enumerate_order_optimum(inst)
        assert bb.proved
        assert bb.value == en.value
        # Both witnesses must evaluate to the value they claim.
        assert (
            exact_order_makespan(
                inst.with_order([list(r) for r in bb.order])
            )
            == bb.value
        )
        assert bb.lower_bound <= bb.value

    def test_suite_is_about_100_instances(self):
        assert len(K1_SEEDS) + 2 * len(K2_SEEDS) >= 100

    @pytest.mark.parametrize("seed", [0, 7, 23])
    def test_shapes_stay_tiny(self, seed):
        inst = _tiny_instance(seed)
        assert inst.m <= 3
        assert inst.total_jobs <= 6


# ----------------------------------------------------------------------
# Satellite 1 (continued): both backends, k in {1, 2} (epsilon mode)
# ----------------------------------------------------------------------
class TestExhaustivePolicyMode:
    @pytest.mark.parametrize("backend", ["exact", "vector"])
    @pytest.mark.parametrize("seed", K2_SEEDS)
    def test_k2_bb_equals_enumeration(self, backend, seed):
        inst = _k2_instance(seed)
        evaluate = _policy_evaluator("greedy-balance", backend)
        bb = branch_and_bound_order(inst, evaluator=evaluate)
        en = enumerate_order_optimum(inst, evaluator=evaluate)
        assert bb.proved
        assert bb.value == en.value

    @pytest.mark.parametrize("backend", ["exact", "vector"])
    @pytest.mark.parametrize("seed", [0, 11, 29, 41])
    def test_k1_policy_bb_equals_enumeration(self, backend, seed):
        inst = _tiny_instance(seed)
        evaluate = _policy_evaluator("round-robin", backend)
        bb = branch_and_bound_order(inst, evaluator=evaluate)
        en = enumerate_order_optimum(inst, evaluator=evaluate)
        assert bb.proved
        assert bb.value == en.value

    @pytest.mark.parametrize("seed", [0, 11, 29])
    def test_policy_value_at_least_offline_optimum(self, seed):
        inst = _tiny_instance(seed)
        evaluate = _policy_evaluator("round-robin", "vector")
        policy_best = branch_and_bound_order(inst, evaluator=evaluate)
        offline = branch_and_bound_order(inst)
        assert policy_best.value >= offline.value


# ----------------------------------------------------------------------
# The per-order oracle dispatch
# ----------------------------------------------------------------------
class TestExactOrderMakespan:
    def test_single_queue_is_job_count(self):
        inst = Instance([["1/4", "3/4", "1/2"]])
        assert exact_order_makespan(inst) == 3

    def test_auto_matches_named_oracles(self):
        inst = Instance([["1/2", 1], [1, "1/2"]])
        auto = exact_order_makespan(inst)
        for oracle in ("opt-two", "opt-general", "brute-force", "milp"):
            assert exact_order_makespan(inst, oracle=oracle) == auto

    def test_unknown_oracle(self):
        with pytest.raises(SolverError, match="unknown order oracle"):
            exact_order_makespan(Instance([["1/2"]]), oracle="cp-sat")

    def test_opt_two_rejects_wrong_m(self):
        with pytest.raises(SolverError, match="m=2"):
            exact_order_makespan(
                Instance([["1/2"], ["1/2"], ["1/2"]]), oracle="opt-two"
            )

    def test_rejects_multi_resource(self):
        with pytest.raises(InvalidInstanceError):
            exact_order_makespan(_k2_instance(0))

    def test_rejects_releases(self):
        inst = Instance([["1/2"], ["1/2"]]).with_releases([0, 2])
        with pytest.raises(InvalidInstanceError):
            exact_order_makespan(inst)


# ----------------------------------------------------------------------
# Search mechanics: bounds, budget, symmetry, memoization
# ----------------------------------------------------------------------
class TestSearchMechanics:
    def test_order_space_size(self):
        inst = Instance([["1/2", 1, "1/2"], [1, "1/2"]])
        assert order_space_size(inst) == 6 * 2

    def test_identity_order_roundtrip(self):
        inst = Instance([["1/4", "3/4"], ["1/2"]])
        rows = identity_order(inst)
        assert inst.with_order([list(r) for r in rows]) == inst

    def test_lower_bound_is_order_invariant(self):
        inst = Instance([["1/2", 1, "1/4"], [1, "3/4"]])
        lb = order_invariant_lower_bound(inst)
        for _ in range(3):
            shuffled = inst.with_order([[2, 0, 1], [1, 0]])
            assert order_invariant_lower_bound(shuffled) == lb

    def test_lower_bound_includes_queue_length(self):
        # Tiny requirements: the work bound alone would be 1, but one
        # processor still needs one step per unit job.
        inst = Instance([["1/100", "1/100", "1/100"]])
        assert order_invariant_lower_bound(inst) >= 3

    def test_node_budget_returns_unproved_upper_bound(self):
        # Seed 6 is known to need real expansions (8 nodes to close).
        inst = _tiny_instance(6)
        full = branch_and_bound_order(inst)
        assert full.nodes > 1, "seed drifted: pick one that needs search"
        capped = branch_and_bound_order(inst, max_nodes=1)
        assert not capped.proved
        assert capped.value >= full.value  # still a valid upper bound
        assert (
            exact_order_makespan(
                inst.with_order([list(r) for r in capped.order])
            )
            == capped.value
        )

    def test_equal_jobs_collapse_the_search(self):
        # Six identical jobs: 3!*3! = 36 ordered leaves but exactly one
        # distinct order up to job values -- symmetry breaking and the
        # value-keyed memo must avoid re-evaluating duplicates.
        inst = Instance([["1/2"] * 3, ["1/2"] * 3])
        result = branch_and_bound_order(inst)
        assert result.proved
        assert result.leaf_evaluations < order_space_size(inst)

    def test_enumeration_guard(self):
        inst = Instance([["1/2"] * 6, ["1/2"] * 6])
        with pytest.raises(SolverError, match="max_orders"):
            enumerate_order_optimum(inst, max_orders=10)

    def test_gadget_like_zero_node_proof(self):
        # When a seed order already meets the order-invariant lower
        # bound the search must prove optimality without expansions.
        inst = Instance([["1"], ["1"]])
        result = branch_and_bound_order(inst)
        assert result.proved and result.nodes == 0 and result.value == 2
