"""Unit tests for the baseline heuristic policies."""

from fractions import Fraction

import pytest

from repro.algorithms import (
    FewestRemainingJobsFirst,
    GreedyFinishJobs,
    LargestRequirementFirst,
    ProportionalShare,
)
from repro.core import ExecState, Instance
from repro.core.properties import is_non_wasting, is_progressive
from repro.generators import uniform_instance

ALL = [
    GreedyFinishJobs(),
    LargestRequirementFirst(),
    FewestRemainingJobsFirst(),
    ProportionalShare(),
]


class TestAllHeuristicsComplete:
    @pytest.mark.parametrize("policy", ALL, ids=lambda p: p.name)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_terminates_with_valid_schedule(self, policy, seed):
        inst = uniform_instance(3, 3, grid=8, seed=seed)
        sched = policy.run(inst)
        assert sched.makespan >= inst.max_jobs

    @pytest.mark.parametrize("policy", ALL, ids=lambda p: p.name)
    def test_general_sizes_supported(self, policy):
        from repro.generators import general_size_instance

        inst = general_size_instance(2, 2, grid=8, max_size=2, seed=3)
        sched = policy.run(inst)
        assert sched.makespan > 0


class TestGreedyFinishJobs:
    def test_prefers_cheap_jobs(self):
        inst = Instance.from_requirements([["9/10"], ["1/10"], ["2/10"]])
        shares = GreedyFinishJobs().shares(ExecState(inst))
        assert shares[1] == Fraction(1, 10)
        assert shares[2] == Fraction(2, 10)
        assert shares[0] == Fraction(7, 10)  # leftover, partial

    def test_water_fill_properties(self):
        inst = uniform_instance(3, 3, seed=4)
        sched = GreedyFinishJobs().run(inst)
        assert is_non_wasting(sched)
        assert is_progressive(sched)


class TestLargestRequirementFirst:
    def test_prefers_heavy_jobs(self):
        inst = Instance.from_requirements([["9/10"], ["1/10"]])
        shares = LargestRequirementFirst().shares(ExecState(inst))
        assert shares[0] == Fraction(9, 10)
        assert shares[1] == Fraction(1, 10)


class TestFewestRemainingJobsFirst:
    def test_inverts_greedy_balance(self):
        inst = Instance.from_requirements([["1/2"], ["1/2", "1/2"]])
        shares = FewestRemainingJobsFirst().shares(ExecState(inst))
        assert shares[0] == Fraction(1, 2)  # fewer jobs served first


class TestProportionalShare:
    def test_splits_proportionally(self):
        inst = Instance.from_requirements([["3/4"], ["3/4"]])
        shares = ProportionalShare().shares(ExecState(inst))
        assert shares == [Fraction(1, 2), Fraction(1, 2)]

    def test_grants_everything_when_it_fits(self):
        inst = Instance.from_requirements([["1/4"], ["1/4"]])
        shares = ProportionalShare().shares(ExecState(inst))
        assert shares == [Fraction(1, 4), Fraction(1, 4)]

    def test_not_progressive_in_general(self):
        inst = Instance.from_requirements([["3/4", "1/4"], ["3/4", "1/4"]])
        sched = ProportionalShare().run(inst)
        assert not is_progressive(sched)
