"""Unit + property tests for the integer-grid fast path."""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.algorithms import (
    GreedyBalance,
    RoundRobin,
    greedy_balance_makespan,
    round_robin_makespan,
    round_robin_makespan_formula,
)
from repro.core import Instance, Job
from repro.exceptions import UnitSizeRequiredError
from repro.generators import (
    greedy_balance_adversarial,
    ragged_instance,
    round_robin_adversarial,
    uniform_instance,
)

from ..conftest import unit_instances


class TestEquivalence:
    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("m,n", [(2, 6), (4, 4), (6, 3)])
    def test_greedy_matches_exact_simulation(self, m, n, seed):
        inst = uniform_instance(m, n, seed=seed)
        assert greedy_balance_makespan(inst) == GreedyBalance().run(inst).makespan

    @pytest.mark.parametrize("seed", range(6))
    def test_ragged_queues(self, seed):
        inst = ragged_instance(4, (1, 6), seed=seed)
        assert greedy_balance_makespan(inst) == GreedyBalance().run(inst).makespan
        assert round_robin_makespan(inst) == RoundRobin().run(inst).makespan

    @pytest.mark.parametrize("seed", range(6))
    def test_round_robin_matches_formula(self, seed):
        inst = uniform_instance(3, 5, seed=seed)
        assert round_robin_makespan(inst) == round_robin_makespan_formula(inst)

    def test_adversarial_families(self):
        inst = round_robin_adversarial(30)
        assert round_robin_makespan(inst) == 60
        inst = greedy_balance_adversarial(3, 8)
        assert greedy_balance_makespan(inst) == 5 * 8

    @settings(
        max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(inst=unit_instances(max_m=4, max_n=5))
    def test_property_equivalence(self, inst):
        assert greedy_balance_makespan(inst) == GreedyBalance().run(inst).makespan
        assert round_robin_makespan(inst) == RoundRobin().run(inst).makespan


class TestGuards:
    def test_rejects_general_sizes(self):
        inst = Instance([[Job("1/2", 2)]])
        with pytest.raises(UnitSizeRequiredError):
            greedy_balance_makespan(inst)
        with pytest.raises(UnitSizeRequiredError):
            round_robin_makespan(inst)

    def test_zero_requirement_jobs(self):
        inst = Instance.from_requirements([[0, 0, "1/2"]])
        assert greedy_balance_makespan(inst) == GreedyBalance().run(inst).makespan
