"""Unit tests for the policy base machinery."""

from fractions import Fraction

import pytest

from repro.algorithms import available_policies, get_policy, water_fill
from repro.algorithms.base import Policy
from repro.core import ExecState, Instance


class TestWaterFill:
    @pytest.fixture
    def state(self) -> ExecState:
        inst = Instance.from_requirements([["1/2"], ["3/4"], ["1/4"]])
        return ExecState(inst)

    def test_priority_order_respected(self, state):
        shares = water_fill(state, [1, 0, 2])
        assert shares == [Fraction(1, 4), Fraction(3, 4), Fraction(0)]

    def test_full_capacity_used_when_needed(self, state):
        shares = water_fill(state, [0, 1, 2])
        assert sum(shares) == 1

    def test_stops_when_capacity_exhausted(self, state):
        shares = water_fill(state, [1, 0], capacity=Fraction(3, 4))
        assert shares == [Fraction(0), Fraction(3, 4), Fraction(0)]

    def test_skips_inactive(self, state):
        state.apply([Fraction(1, 2), Fraction(0), Fraction(0)])  # p0 done
        shares = water_fill(state, [0, 1, 2])
        assert shares[0] == 0
        assert shares[1] == Fraction(3, 4)

    def test_rejects_negative_capacity(self, state):
        with pytest.raises(ValueError):
            water_fill(state, [0], capacity=Fraction(-1))

    def test_at_most_one_partial_grant(self, state):
        # Progressive by construction: all fully-served jobs finish.
        shares = water_fill(state, [0, 1, 2])
        partials = [
            i
            for i, s in enumerate(shares)
            if 0 < s < state.remaining_work(i)
        ]
        assert len(partials) <= 1


class TestRegistry:
    def test_known_policies_registered(self):
        names = available_policies()
        for expected in (
            "round-robin",
            "greedy-balance",
            "greedy-finish-jobs",
            "largest-requirement-first",
            "fewest-remaining-jobs-first",
            "proportional-share",
        ):
            assert expected in names

    def test_get_policy_instantiates(self):
        policy = get_policy("greedy-balance")
        assert isinstance(policy, Policy)
        assert policy.name == "greedy-balance"

    def test_get_policy_unknown(self):
        with pytest.raises(KeyError, match="unknown policy"):
            get_policy("does-not-exist")

    def test_policy_run_helper(self, two_proc_instance):
        schedule = get_policy("greedy-balance").run(two_proc_instance)
        assert schedule.makespan > 0

    def test_shares_is_abstract(self, two_proc_instance):
        with pytest.raises(NotImplementedError):
            Policy().shares(ExecState(two_proc_instance))
