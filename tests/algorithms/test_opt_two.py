"""Unit tests for the m=2 exact dynamic program (Theorem 5)."""

from fractions import Fraction

import pytest

from repro.algorithms import (
    GreedyBalance,
    brute_force_makespan,
    opt_res_assignment,
    opt_res_assignment_pq,
)
from repro.core import Instance
from repro.exceptions import SolverError, UnitSizeRequiredError
from repro.generators import round_robin_adversarial, uniform_instance


class TestBasics:
    def test_single_jobs(self):
        inst = Instance.from_requirements([["1/2"], ["1/2"]])
        result = opt_res_assignment(inst)
        assert result.makespan == 1

    def test_pairing_beats_greedy(self):
        # (0.9, 0.1) pairs across processors: OPT=2, any same-step
        # pairing of the heavy jobs needs 3.
        inst = Instance.from_requirements([["9/10", "1/10"], ["1/10", "9/10"]])
        assert opt_res_assignment(inst).makespan == 2

    def test_heavy_chain(self):
        inst = Instance.from_requirements([["1", "1"], ["1", "1"]])
        assert opt_res_assignment(inst).makespan == 4

    def test_schedule_is_valid_and_matches_value(self):
        inst = uniform_instance(2, 6, seed=5)
        result = opt_res_assignment(inst)
        assert result.schedule.makespan == result.makespan
        assert result.schedule.instance == inst

    def test_rejects_wrong_processor_count(self, three_proc_instance):
        with pytest.raises(SolverError, match="exactly 2"):
            opt_res_assignment(three_proc_instance)

    def test_rejects_general_sizes(self):
        from repro.core import Job

        inst = Instance([[Job("1/2", 2)], [Job("1/2")]])
        with pytest.raises(UnitSizeRequiredError):
            opt_res_assignment(inst)

    def test_unequal_queue_lengths(self):
        inst = Instance.from_requirements([["1/2"], ["1/2", "1/2", "1/2"]])
        result = opt_res_assignment(inst)
        assert result.makespan == 3
        assert brute_force_makespan(inst) == 3


class TestAgainstOracles:
    @pytest.mark.parametrize("seed", range(12))
    def test_matches_brute_force(self, seed):
        inst = uniform_instance(2, 4, grid=10, seed=seed)
        assert opt_res_assignment(inst).makespan == brute_force_makespan(inst)

    @pytest.mark.parametrize("seed", range(12))
    def test_pq_variant_agrees(self, seed):
        inst = uniform_instance(2, 6, seed=seed)
        table = opt_res_assignment(inst)
        pq = opt_res_assignment_pq(inst)
        assert table.makespan == pq.makespan

    def test_pq_expands_no_more_cells(self):
        # Both variants only touch reachable cells; the PQ variant
        # additionally settles the final cell (hence the +1).
        inst = round_robin_adversarial(20)
        table = opt_res_assignment(inst)
        pq = opt_res_assignment_pq(inst)
        assert pq.cells_expanded <= table.cells_expanded + 1

    @pytest.mark.parametrize("seed", range(8))
    def test_never_above_greedy(self, seed):
        inst = uniform_instance(2, 6, seed=seed)
        opt = opt_res_assignment(inst).makespan
        gb = GreedyBalance().run(inst).makespan
        assert opt <= gb

    @pytest.mark.parametrize("seed", range(8))
    def test_never_below_lower_bounds(self, seed):
        from repro.core import best_lower_bound

        inst = uniform_instance(2, 6, seed=seed)
        assert opt_res_assignment(inst).makespan >= best_lower_bound(inst)


class TestAdversarialFamily:
    @pytest.mark.parametrize("n", [3, 8, 15])
    def test_fig3_optimum(self, n):
        inst = round_robin_adversarial(n)
        result = opt_res_assignment(inst)
        assert result.makespan == n + 1
        # The reconstructed schedule is non-wasting on this family
        # except possibly boundary steps; at minimum it is valid and
        # wastes less than RoundRobin.
        assert result.schedule.total_waste() < Fraction(n, 2)


class TestComplexity:
    def test_cells_quadratic(self):
        # Table variant touches every cell: (n1+1)(n2+1).
        inst = uniform_instance(2, 10, seed=0)
        result = opt_res_assignment(inst)
        assert result.cells_expanded <= 11 * 11
        assert result.cells_expanded >= 11  # at least one diagonal
