"""Unit tests for RoundRobin (Section 4.2, Theorem 3)."""

from fractions import Fraction

import pytest

from repro.algorithms import (
    RoundRobin,
    opt_res_assignment,
    round_robin_makespan_formula,
)
from repro.algorithms.round_robin import round_robin_phase
from repro.core import ExecState, Instance
from repro.generators import round_robin_adversarial, uniform_instance


class TestPhases:
    def test_initial_phase(self, two_proc_instance):
        assert round_robin_phase(ExecState(two_proc_instance)) == 1

    def test_phase_waits_for_stragglers(self):
        inst = Instance.from_requirements([["1/2", "1/2"], ["3/4", "1/2"]])
        state = ExecState(inst)
        state.apply([Fraction(1, 2), Fraction(1, 2)])  # p0 done, p1 not
        assert round_robin_phase(state) == 1
        state.apply([Fraction(0), Fraction(1, 4)])  # p1 finishes phase 1
        assert round_robin_phase(state) == 2

    def test_shorter_queues_do_not_hold_phases(self):
        inst = Instance.from_requirements([["1/2"], ["1/2", "1/2"]])
        state = ExecState(inst)
        state.apply([Fraction(1, 2), Fraction(1, 2)])
        # Processor 0 has no phase-2 job; phase 2 concerns only p1.
        assert round_robin_phase(state) == 2

    def test_idle_within_phase_wastes(self):
        # p0's phase-1 job finishes in step 1; p1 needs two steps; p0
        # must NOT start phase 2 meanwhile.
        inst = Instance.from_requirements([["1/4", "1/4"], ["1", "1/4"]])
        schedule = RoundRobin().run(inst)
        assert schedule.makespan == 3  # phase1: 2 steps, phase2: 1 step
        # In step 1 (second step of phase 1) p0 receives nothing.
        assert schedule.share(1, 0) == 0


class TestMakespanFormula:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("m,n", [(2, 4), (3, 3), (4, 5)])
    def test_simulated_matches_closed_form(self, m, n, seed):
        inst = uniform_instance(m, n, seed=seed)
        assert RoundRobin().run(inst).makespan == round_robin_makespan_formula(inst)

    def test_ragged_queues(self):
        from repro.generators import ragged_instance

        inst = ragged_instance(3, (1, 5), seed=9)
        assert RoundRobin().run(inst).makespan == round_robin_makespan_formula(inst)


class TestTheorem3:
    @pytest.mark.parametrize("n", [2, 5, 10, 30])
    def test_adversarial_family_exact_makespans(self, n):
        inst = round_robin_adversarial(n)
        assert RoundRobin().run(inst).makespan == 2 * n
        assert opt_res_assignment(inst).makespan == n + 1

    def test_ratio_approaches_two(self):
        ratios = [
            Fraction(2 * n, n + 1) for n in (5, 20, 80)
        ]
        assert all(a < b for a, b in zip(ratios, ratios[1:]))
        assert ratios[-1] > Fraction(19, 10)

    @pytest.mark.parametrize("seed", range(5))
    def test_upper_bound_on_random_instances(self, seed):
        inst = uniform_instance(2, 5, seed=seed)
        rr = RoundRobin().run(inst)
        opt = opt_res_assignment(inst).makespan
        assert Fraction(rr.makespan, opt) <= 2
