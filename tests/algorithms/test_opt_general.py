"""Unit tests for the fixed-m configuration search (Theorem 6)."""

import pytest

from repro.algorithms import (
    GreedyBalance,
    brute_force_makespan,
    opt_res_assignment,
    opt_res_assignment_general,
)
from repro.core import Instance
from repro.exceptions import SolverError, UnitSizeRequiredError
from repro.generators import ragged_instance, uniform_instance


class TestBasics:
    def test_single_processor(self):
        inst = Instance.from_requirements([["1/2", "1", "1/4"]])
        result = opt_res_assignment_general(inst)
        assert result.makespan == 3  # one job per step regardless

    def test_all_fit_one_step(self):
        inst = Instance.from_requirements([["1/4"], ["1/4"], ["1/4"]])
        assert opt_res_assignment_general(inst).makespan == 1

    def test_schedule_matches_value(self):
        inst = uniform_instance(3, 3, seed=2)
        result = opt_res_assignment_general(inst)
        assert result.schedule.makespan == result.makespan

    def test_stats_recorded(self):
        inst = uniform_instance(3, 2, seed=0)
        result = opt_res_assignment_general(inst)
        assert result.stats[0] == 1  # the initial configuration
        assert result.total_configurations >= len(result.stats)

    def test_rejects_general_sizes(self):
        from repro.core import Job

        inst = Instance([[Job("1/2", 2)]])
        with pytest.raises(UnitSizeRequiredError):
            opt_res_assignment_general(inst)

    def test_state_cap(self):
        inst = uniform_instance(4, 4, seed=0)
        with pytest.raises(SolverError, match="exceeded"):
            opt_res_assignment_general(inst, max_configurations=5)


class TestAgainstOracles:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_brute_force_m3(self, seed):
        inst = uniform_instance(3, 2, grid=10, seed=seed)
        assert (
            opt_res_assignment_general(inst).makespan
            == brute_force_makespan(inst)
        )

    @pytest.mark.parametrize("seed", range(10))
    def test_matches_dp_on_m2(self, seed):
        inst = uniform_instance(2, 5, seed=seed)
        assert (
            opt_res_assignment_general(inst).makespan
            == opt_res_assignment(inst).makespan
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_ragged_matches_brute_force(self, seed):
        inst = ragged_instance(3, (1, 3), grid=8, seed=seed)
        assert (
            opt_res_assignment_general(inst).makespan
            == brute_force_makespan(inst)
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_never_above_greedy(self, seed):
        inst = uniform_instance(3, 3, seed=seed)
        assert (
            opt_res_assignment_general(inst).makespan
            <= GreedyBalance().run(inst).makespan
        )
