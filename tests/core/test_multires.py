"""Multi-resource model semantics (the share-matrix extension).

Covers the ``k > 1`` generalization end to end at the core layer:
requirement vectors on jobs/instances, the bottleneck speed rule of
``ExecState``/``VectorState``, the per-resource feasibility check and
congestion lower bound, spent-per-resource accounting, and the
``require_single_resource`` guards protecting the paper-only
machinery.  ``k = 1`` behavior is pinned bit-identical elsewhere
(``tests/core/test_golden.py``); here we pin that the degenerate
cases (one resource, or extra all-zero resources) coincide with it.
"""

from fractions import Fraction

import pytest

from repro.algorithms import (
    GreedyBalance,
    get_policy,
    greedy_balance_makespan,
    opt_res_assignment,
    water_fill_multi,
)
from repro.core import ExecState, Instance, Job, Schedule, check_share_vector, simulate
from repro.core.kernel import ExactRuntime, run_kernel
from repro.exceptions import InfeasibleAssignmentError, InvalidInstanceError
from repro.generators import uniform_instance


def k2_instance() -> Instance:
    return Instance(
        [
            [Job(["1/2", "1/4"]), Job(["3/4", "1/2"])],
            [Job(["1/2", "3/4"]), Job(["1/4", "1/4"])],
        ]
    )


class TestJobRequirements:
    def test_scalar_job_is_single_resource(self):
        job = Job("1/2")
        assert job.num_resources == 1
        assert job.requirements == (Fraction(1, 2),)
        assert job.requirement == Fraction(1, 2)

    def test_vector_job_bottleneck(self):
        job = Job(["1/4", "3/4", "1/2"], size=2)
        assert job.num_resources == 3
        assert job.requirement == Fraction(3, 4)  # bottleneck = max
        assert job.work == Fraction(3, 2)
        assert job.work_vector == (
            Fraction(1, 2),
            Fraction(3, 2),
            Fraction(1),
        )

    def test_vector_bounds_validated(self):
        with pytest.raises(InvalidInstanceError):
            Job(["1/2", "3/2"])
        with pytest.raises(InvalidInstanceError):
            Job([])

    def test_equality_ignores_representation(self):
        assert Job("1/2") == Job(["1/2"])
        assert Job(["1/2", "1/4"]) != Job(["1/4", "1/2"])


class TestInstanceResources:
    def test_num_resources(self):
        assert uniform_instance(3, 3, seed=0).num_resources == 1
        assert k2_instance().num_resources == 2

    def test_mixed_resource_counts_rejected(self):
        with pytest.raises(InvalidInstanceError, match="same number of shared"):
            Instance([[Job("1/2"), Job(["1/2", "1/4"])]])

    def test_per_resource_congestion_bound(self):
        # W_0 = 2, W_1 = 7/4 -> bound = max(ceil(2), ceil(7/4)) = 2;
        # sum of bottleneck works would overstate it.
        inst = k2_instance()
        assert inst.resource_work(0) == Fraction(2)
        assert inst.resource_work(1) == Fraction(7, 4)
        assert inst.work_lower_bound() == 2
        assert inst.makespan_lower_bound() == 2

    def test_single_resource_bound_unchanged(self):
        from repro.core import frac_ceil

        inst = uniform_instance(4, 6, seed=1)
        assert inst.work_lower_bound() == frac_ceil(inst.total_work())
        assert inst.resource_work(0) == inst.total_work()

    def test_guards_reject_multi_resource(self):
        inst = k2_instance()
        with pytest.raises(InvalidInstanceError, match="single-resource"):
            inst.to_integer_grid()
        with pytest.raises(InvalidInstanceError, match="single-resource"):
            simulate(inst, GreedyBalance())
        with pytest.raises(InvalidInstanceError, match="single-resource"):
            Schedule(inst, [])
        with pytest.raises(InvalidInstanceError, match="single-resource"):
            greedy_balance_makespan(inst)
        with pytest.raises(InvalidInstanceError, match="single-resource"):
            opt_res_assignment(
                Instance([[Job(["1/2", "1/2"])], [Job(["1/2", "1/2"])]])
            )


class TestCheckShareMatrix:
    def test_valid_matrix_passes(self):
        inst = k2_instance()
        check_share_vector(
            inst, 0, ((Fraction(1, 2), Fraction(1, 2)), (Fraction(1, 4), Fraction(3, 4)))
        )

    def test_wrong_row_count(self):
        with pytest.raises(InfeasibleAssignmentError, match="share rows"):
            check_share_vector(k2_instance(), 0, ((Fraction(1, 2), Fraction(1, 2)),))

    def test_per_resource_overuse(self):
        rows = (
            (Fraction(1, 2), Fraction(1, 2)),
            (Fraction(3, 4), Fraction(1, 2)),  # resource 1 oversubscribed
        )
        with pytest.raises(InfeasibleAssignmentError, match="resource 1"):
            check_share_vector(k2_instance(), 0, rows)

    def test_flat_vector_for_multi_instance_rejected(self):
        runtime = ExactRuntime(k2_instance())
        with pytest.raises(InfeasibleAssignmentError, match="flat share vector"):
            run_kernel(runtime, lambda state: [Fraction(1, 2), Fraction(1, 2)])


class TestBottleneckSemantics:
    def test_speed_follows_bottleneck_resource(self):
        # One processor, one job, r = (1/2, 1/4).  Granting the full
        # vector runs it at full speed: work = r* = 1/2 per step.
        inst = Instance([[Job(["1/2", "1/4"])]])
        state = ExecState(inst)
        outcome = state.apply(((Fraction(1, 2),), (Fraction(1, 4),)))
        assert outcome.processed == (Fraction(1, 2),)
        assert outcome.completed == ((0, 0),)

    def test_starved_lane_throttles_speed(self):
        # Granting only 1/8 on resource 1 (half its requirement) halves
        # the speed even though resource 0 is fully granted.
        inst = Instance([[Job(["1/2", "1/4"])]])
        state = ExecState(inst)
        outcome = state.apply(((Fraction(1, 2),), (Fraction(1, 8),)))
        assert outcome.processed == (Fraction(1, 4),)
        assert not outcome.completed
        assert state.remaining[0] == Fraction(1, 4)

    def test_zero_requirement_lane_is_ignored(self):
        # A lane the job does not use cannot throttle it.
        inst = Instance([[Job(["1/2", "0"])]])
        state = ExecState(inst)
        outcome = state.apply(((Fraction(1, 2),), (Fraction(0),)))
        assert outcome.completed == ((0, 0),)

    def test_resource_spent_ledger(self):
        inst = Instance([[Job(["1/2", "1/4"])]])
        state = ExecState(inst)
        state.apply(((Fraction(1, 2),), (Fraction(1, 4),)))
        # Full progress: spends r_l on each lane.
        assert state.resource_spent == [Fraction(1, 2), Fraction(1, 4)]

    def test_single_resource_spent_matches_processed(self):
        inst = uniform_instance(3, 4, seed=2)
        schedule = GreedyBalance().run(inst)
        state = ExecState(inst)
        for step in schedule.steps:
            state.apply(step.shares)
        assert state.resource_spent == [inst.total_work()]

    def test_extra_zero_resource_matches_k1_run(self):
        # Lifting every job with an all-zero second lane must not
        # change the schedule: same makespans, same bottleneck rows.
        base = uniform_instance(4, 5, seed=5)
        lifted = Instance(
            [
                [Job([job.requirement, 0], job.size) for job in queue]
                for queue in base.queues
            ]
        )
        policy = get_policy("greedy-balance")
        k1 = policy.run_backend(base, backend="exact")
        k2 = policy.run_backend(lifted, backend="exact")
        assert k2.makespan == k1.makespan
        for flat_row, matrix in zip(k1.shares, k2.shares):
            assert tuple(matrix[0]) == tuple(flat_row)
            assert all(x == 0 for x in matrix[1])


class TestWaterFillMulti:
    def test_reduces_to_scalar_rule(self):
        inst = uniform_instance(3, 3, seed=7)
        state = ExecState(inst)
        from repro.algorithms import water_fill

        flat = water_fill(state, range(3))
        rows = water_fill_multi(state, range(3))
        assert rows == [flat]

    def test_respects_every_capacity(self):
        inst = Instance(
            [
                [Job(["1/2", "3/4"])],
                [Job(["1/2", "3/4"])],
                [Job(["1/2", "0"])],
            ]
        )
        state = ExecState(inst)
        rows = water_fill_multi(state, range(3))
        for row in rows:
            assert sum(row) <= 1
        # p0 runs at full speed (grants 1/2 and 3/4).  p1 is throttled
        # by resource 1 -- only 1/4 of it remains, a 1/3 speed
        # fraction, so it gets 1/6 and 1/4.  p2 needs no resource 1
        # but resource 0 has only 1 - 1/2 - 1/6 = 1/3 left -> partial.
        assert rows[0][0] == Fraction(1, 2)
        assert rows[1][0] == Fraction(3, 4)
        assert rows[0][1] == Fraction(1, 6)
        assert rows[1][1] == Fraction(1, 4)
        assert rows[0][2] == Fraction(1, 3)
        assert rows[1][2] == Fraction(0)


class TestMakespanLowerBoundWithArrivals:
    def test_release_shifted_bound(self):
        inst = Instance(
            [[Job(["1/2", "1/4"])], [Job(["1/2", "3/4"])]],
            releases=[0, 3],
        )
        assert inst.makespan_lower_bound() >= 4  # p1 arrives at 3, needs >= 1
