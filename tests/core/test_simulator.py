"""Unit tests for the step simulator and ExecState."""

from fractions import Fraction

import pytest

from repro.core import ExecState, Instance, simulate
from repro.core.simulator import default_step_limit
from repro.exceptions import InfeasibleAssignmentError, SimulationLimitError


class TestExecState:
    def test_initial_state(self, two_proc_instance):
        state = ExecState(two_proc_instance)
        assert state.t == 0
        assert state.active_processors() == [0, 1]
        assert state.jobs_remaining(0) == 4
        assert state.remaining_work(0) == Fraction(9, 10)
        assert not state.all_done

    def test_apply_advances(self, two_proc_instance):
        state = ExecState(two_proc_instance)
        outcome = state.apply([Fraction(9, 10), Fraction(1, 10)])
        assert outcome.completed == ((0, 0),)
        assert state.done == [1, 0]
        assert state.remaining_work(1) == Fraction(2, 5)
        assert state.t == 1

    def test_started_reported_once(self):
        inst = Instance.from_requirements([["1/2"]])
        state = ExecState(inst)
        first = state.apply([Fraction(1, 4)])
        second = state.apply([Fraction(1, 4)])
        assert first.started == ((0, 0),)
        assert second.started == ()
        assert second.completed == ((0, 0),)

    def test_inactive_processor_untouched(self):
        inst = Instance.from_requirements([["1/4"], ["1/4", "1/4"]])
        state = ExecState(inst)
        state.apply([Fraction(1, 4), Fraction(1, 4)])
        outcome = state.apply([Fraction(1), Fraction(0)])
        assert outcome.active[0] is None
        assert outcome.processed[0] == 0


class TestSimulate:
    def test_runs_policy_to_completion(self, two_proc_instance):
        calls = []

        def policy(state):
            calls.append(state.t)
            shares = [0] * state.num_processors
            for i in state.active_processors():
                shares[i] = min(state.remaining_work(i), 1 - sum(shares))
            return shares

        sched = simulate(two_proc_instance, policy)
        assert sched.makespan == len(calls)
        assert sched.instance is two_proc_instance

    def test_rejects_overuse(self, two_proc_instance):
        with pytest.raises(InfeasibleAssignmentError, match="overused"):
            simulate(two_proc_instance, lambda s: [1, 1])

    def test_rejects_wrong_width(self, two_proc_instance):
        with pytest.raises(InfeasibleAssignmentError, match="shares"):
            simulate(two_proc_instance, lambda s: [1])

    def test_rejects_negative(self, two_proc_instance):
        with pytest.raises(InfeasibleAssignmentError, match="outside"):
            simulate(two_proc_instance, lambda s: [-1, 0])

    def test_stall_detection(self, two_proc_instance):
        with pytest.raises(SimulationLimitError, match="no progress"):
            simulate(two_proc_instance, lambda s: [0, 0])

    def test_max_steps(self, two_proc_instance):
        # A slow but progressing policy hits the explicit step limit.
        def dribble(state):
            shares = [Fraction(0)] * state.num_processors
            i = state.active_processors()[0]
            shares[i] = min(Fraction(1, 100), state.remaining_work(i))
            return shares

        with pytest.raises(SimulationLimitError, match="did not finish"):
            simulate(two_proc_instance, dribble, max_steps=3)

    def test_default_step_limit_scales(self, two_proc_instance):
        assert default_step_limit(two_proc_instance) >= (
            two_proc_instance.total_jobs + two_proc_instance.work_lower_bound()
        )
