"""Unit tests for the Section 4.1 schedule properties."""

from fractions import Fraction


from repro.core import Instance, Schedule
from repro.core.properties import (
    balance_violations,
    check_proposition_1,
    check_proposition_2,
    is_balanced,
    is_nested,
    is_nice,
    is_non_wasting,
    is_progressive,
    nested_violations,
)
from repro.generators import fig2_nested_schedule, fig2_unnested_schedule

H = Fraction(1, 2)
Q = Fraction(1, 4)


class TestNonWasting:
    def test_full_usage_is_non_wasting(self):
        inst = Instance.from_requirements([["1/2"], ["1/2"]])
        assert is_non_wasting(Schedule(inst, [[H, H]]))

    def test_partial_usage_finishing_all_is_non_wasting(self):
        inst = Instance.from_requirements([["1/4"], ["1/4"]])
        assert is_non_wasting(Schedule(inst, [[Q, Q]]))

    def test_partial_usage_leaving_work_is_wasting(self):
        inst = Instance.from_requirements([["1/2"], ["1/2"]])
        sched = Schedule(inst, [[H, Q], [0, Q]])
        assert not is_non_wasting(sched)


class TestProgressive:
    def test_one_partial_ok(self):
        inst = Instance.from_requirements([["1/2"], ["3/4"]])
        sched = Schedule(inst, [[H, H], [0, Q]])
        assert is_progressive(sched)

    def test_two_partials_not_progressive(self):
        inst = Instance.from_requirements([["3/4"], ["3/4"]])
        sched = Schedule(inst, [[H, H], [Q, Q]])
        assert not is_progressive(sched)

    def test_zero_share_partials_ignored(self):
        # A job that is partially processed but receives nothing this
        # step does not count against progressiveness.
        inst = Instance.from_requirements([["3/4"], ["3/4"]])
        sched = Schedule(inst, [[H, 0], [Q, "3/4"], [0, 0]], validate=False)
        assert is_progressive(Schedule(inst, [[H, 0], [Q, "3/4"]]))


class TestNested:
    def test_fig2_examples(self):
        assert is_nested(fig2_nested_schedule())
        violations = nested_violations(fig2_unnested_schedule())
        assert violations
        # The witness: p1's job (started first) runs at t=2 while p2's
        # job (started at t=1) is in progress.
        assert ((1, 0), (2, 0), 2) in violations

    def test_nice_combines_all_three(self):
        assert is_nice(fig2_nested_schedule())
        assert not is_nice(fig2_unnested_schedule())


class TestBalanced:
    def test_balanced_schedule(self):
        # Both processors have 1 job; either may finish first.
        inst = Instance.from_requirements([["1/2"], ["1/2"]])
        assert is_balanced(Schedule(inst, [[H, H]]))

    def test_unbalanced_witness(self):
        # Processor 1 has more jobs but processor 0 finishes alone.
        inst = Instance.from_requirements([["1/2"], ["1/2", "1/2"]])
        sched = Schedule(inst, [[H, Q], [0, Q], [0, H]])
        violations = balance_violations(sched)
        assert (0, 0, 1) in violations
        assert not is_balanced(sched)

    def test_greedy_balance_always_balanced(self, three_proc_instance):
        from repro.algorithms import GreedyBalance

        sched = GreedyBalance().run(three_proc_instance)
        assert is_balanced(sched)
        assert check_proposition_1(sched)
        assert check_proposition_2(sched)


class TestPropositions:
    def test_equal_queue_head_start_is_still_balanced(self):
        # With equal remaining counts, one processor may run ahead:
        # Definition 5 only constrains *strictly more loaded* peers.
        inst = Instance.from_requirements([["1/4", "1/4", "1/4"], ["1/4"]])
        sched = Schedule(inst, [[Q, 0], [Q, 0], [Q, Q]])
        assert is_balanced(sched)

    def test_proposition_1_detects_imbalance(self):
        # Drain p0 completely while p1 (equally loaded) waits: at t=1
        # p1 holds strictly more jobs and does not finish -> unbalanced,
        # and n_0(t) = 0 < n_1(t) - 1 violates Proposition 1(a).
        inst = Instance.from_requirements(
            [["1/4", "1/4", "1/4"], ["1/4", "1/4", "1/4"]]
        )
        sched = Schedule(
            inst,
            [[Q, 0], [Q, 0], [Q, Q], [0, Q], [0, Q]],
        )
        assert not is_balanced(sched)
        assert not check_proposition_1(sched)
