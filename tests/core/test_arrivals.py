"""Online-arrival (release time) semantics across every layer."""

from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    GreedyBalance,
    RoundRobin,
    available_policies,
    get_policy,
    greedy_balance_makespan,
    opt_res_assignment,
    round_robin_makespan_formula,
)
from repro.analysis import verify_schedule, verify_share_rows
from repro.backends import VectorBackend, make_campaign_instances
from repro.core import ExecState, Instance, simulate
from repro.core.simulator import default_step_limit
from repro.exceptions import InvalidInstanceError
from repro.generators import (
    Phase,
    TaskSpec,
    sample_arrivals,
    tasks_to_instance,
    uniform_instance,
    with_arrivals,
)
from repro.io import instance_from_dict, instance_to_dict
from repro.simulation import run_workload

from .test_golden import share_digest


class TestInstanceReleases:
    def test_default_is_static(self, two_proc_instance):
        assert two_proc_instance.releases == (0, 0)
        assert not two_proc_instance.has_releases
        assert two_proc_instance.max_release == 0

    def test_with_releases(self, two_proc_instance):
        inst = two_proc_instance.with_releases([2, 0])
        assert inst.releases == (2, 0)
        assert inst.has_releases
        assert inst.max_release == 2
        assert inst.release(0) == 2
        # queues untouched, original untouched
        assert inst.queues == two_proc_instance.queues
        assert not two_proc_instance.has_releases

    def test_releases_affect_identity(self, two_proc_instance):
        released = two_proc_instance.with_releases([1, 0])
        assert released != two_proc_instance
        assert hash(released) != hash(two_proc_instance) or released != two_proc_instance
        assert released == two_proc_instance.with_releases((1, 0))

    def test_validation(self):
        with pytest.raises(InvalidInstanceError, match="non-negative"):
            Instance.from_requirements([["1/2"]], releases=[-1])
        with pytest.raises(InvalidInstanceError, match="entries"):
            Instance.from_requirements([["1/2"]], releases=[0, 1])

    def test_step_limit_covers_releases(self):
        inst = Instance.from_requirements([["1/2"], ["1/2"]], releases=[0, 1000])
        assert default_step_limit(inst) > 1000

    def test_lower_bound_static_equals_work_bound(self, two_proc_instance):
        assert (
            two_proc_instance.makespan_lower_bound()
            == two_proc_instance.work_lower_bound()
        )

    def test_lower_bound_accounts_for_arrivals(self):
        inst = Instance.from_requirements(
            [["1/10"], ["1/10", "1/10"]], releases=[0, 7]
        )
        # p1 arrives at 7 and still needs 2 unit jobs => >= 9 steps.
        assert inst.makespan_lower_bound() >= 9
        assert simulate(inst, GreedyBalance()).makespan >= 9

    def test_suffix_drops_releases(self):
        inst = Instance.from_requirements(
            [["1/2", "1/2"], ["1/4", "1/4"]], releases=[0, 3]
        )
        suffix = inst.restrict_to_suffix([1, 1])
        assert not suffix.has_releases

    def test_serialization_round_trip(self):
        inst = Instance.from_requirements(
            [["1/2", "1/3"], ["3/4"]], releases=[0, 5]
        )
        data = instance_to_dict(inst)
        assert data["releases"] == [0, 5]
        assert instance_from_dict(data) == inst

    def test_static_serialization_unchanged(self, two_proc_instance):
        data = instance_to_dict(two_proc_instance)
        assert "releases" not in data
        assert instance_from_dict(data) == two_proc_instance


class TestStaticOnlyGuards:
    def test_exact_algorithms_reject_arrivals(self):
        inst = Instance.from_requirements([["1/2"], ["1/2"]], releases=[0, 1])
        for fn in (
            opt_res_assignment,
            greedy_balance_makespan,
            round_robin_makespan_formula,
        ):
            with pytest.raises(InvalidInstanceError, match="static model"):
                fn(inst)


class TestExecStateReleases:
    def test_inactive_until_released(self):
        inst = Instance.from_requirements([["1/2"], ["1/2"]], releases=[0, 2])
        state = ExecState(inst)
        assert state.is_active(0) and not state.is_active(1)
        assert not state.is_released(1)
        assert state.waiting
        # granting the unreleased processor wastes the share
        outcome = state.apply([Fraction(0), Fraction(1, 2)])
        assert outcome.processed == (Fraction(0), Fraction(0))
        assert outcome.active[1] is None
        state.apply([Fraction(0), Fraction(0)])
        assert state.is_active(1)  # t == 2 now
        assert not state.waiting

    def test_all_done_waits_for_arrivals(self):
        inst = Instance.from_requirements([["1/2"], ["1/2"]], releases=[0, 4])
        state = ExecState(inst)
        state.apply([Fraction(1, 2), Fraction(0)])  # finishes p0's job
        assert not state.all_done


class TestSimulateWithArrivals:
    @pytest.mark.parametrize("policy_name", sorted(available_policies()))
    def test_no_job_starts_before_release(self, policy_name):
        inst = Instance.from_requirements(
            [["1/2", "1/4"], ["3/4"], ["1/5", "2/5"]], releases=[0, 2, 4]
        )
        schedule = simulate(inst, get_policy(policy_name))
        for (i, j), start in schedule.start_steps.items():
            assert start >= inst.release(i)
        assert verify_schedule(schedule).ok

    def test_vector_rows_verify_with_releases(self):
        inst = Instance.from_requirements(
            [["1/2", "1/4"], ["3/4"], ["1/5", "2/5"]], releases=[0, 2, 4]
        )
        result = VectorBackend().run(inst, GreedyBalance())
        report = verify_share_rows(inst, result.shares)
        assert report.ok, report.problems

    def test_round_robin_phase_blocks_on_unreleased(self):
        """A later-arriving processor holds its phase open: RoundRobin
        must not skip ahead, on either backend."""
        inst = Instance.from_requirements(
            [["1/2", "1/2", "1/2"], ["1/2", "1/2"]], releases=[0, 4]
        )
        exact = simulate(inst, RoundRobin())
        vector = VectorBackend().run(inst, RoundRobin(), record_shares=True)
        assert exact.makespan == vector.makespan
        # phase 1 cannot end before p1 arrives and finishes job 0
        assert exact.completion_step(0, 1) > exact.completion_step(1, 0) - 1
        rows = [[float(x) for x in step.shares] for step in exact.steps]
        for a, b in zip(rows, vector.shares):
            assert a == pytest.approx(list(b), abs=1e-9)


class TestArrivalGenerators:
    def test_sample_arrivals_deterministic(self):
        a = sample_arrivals(8, max_release=10, seed=3)
        assert a == sample_arrivals(8, max_release=10, seed=3)
        assert all(0 <= r <= 10 for r in a)
        assert min(a) == 0  # pin_first
        assert sample_arrivals(8, max_release=0, seed=3) == (0,) * 8

    def test_with_arrivals_zero_is_identity(self):
        inst = uniform_instance(4, 4, seed=0)
        assert with_arrivals(inst, max_release=0, seed=1) is inst

    def test_task_start_offsets(self):
        tasks = [
            TaskSpec("a", [Phase("1/2", 2)]),
            TaskSpec("b", [Phase("1/4", 1)], start=3),
        ]
        inst = tasks_to_instance(tasks)
        assert inst.releases == (0, 3)
        with pytest.raises(ValueError, match="negative start"):
            TaskSpec("bad", [Phase("1/2", 1)], start=-1)

    def test_campaign_arrivals_deterministic(self):
        a = make_campaign_instances(5, 4, 3, seed=0, max_release=6)
        b = make_campaign_instances(5, 4, 3, seed=0, max_release=6)
        assert a == b
        assert any(inst.has_releases for inst in a)
        static = make_campaign_instances(5, 4, 3, seed=0)
        assert [i.queues for i in a] == [i.queues for i in static]

    def test_campaign_arrival_seed_decorrelated(self):
        """Release times come from their own stream: an explicit
        arrival_seed changes the releases but never the requirements,
        and the default is not the raw requirement seed."""
        a = make_campaign_instances(6, 4, 3, seed=0, max_release=6)
        b = make_campaign_instances(
            6, 4, 3, seed=0, max_release=6, arrival_seed=99
        )
        assert [i.queues for i in a] == [i.queues for i in b]
        assert [i.releases for i in a] != [i.releases for i in b]
        coupled = [
            sample_arrivals(4, max_release=6, seed=0 + k) for k in range(6)
        ]
        assert [list(i.releases) for i in a] != [list(r) for r in coupled]

    def test_engine_idle_before_start_is_not_a_stall(self):
        tasks = [
            TaskSpec("early", [Phase("1/2", 1)]),
            TaskSpec("late", [Phase("1/2", 1)], start=6),
        ]
        trace = run_workload(tasks, GreedyBalance(), unit_split=True)
        late = trace.core_summaries[1]
        # core 1 is inactive (not stalled) until its task starts
        assert late.stall_steps == 0
        assert late.completion_step == 6


class TestArrivalsExperiment:
    def test_registered_and_reproduces(self):
        from repro.experiments import get_experiment
        from repro.experiments.runner import run_experiment

        exp = get_experiment("ARR")
        result = run_experiment(
            exp, m=3, n=3, spreads=(0, 3), seeds=(0, 1), backend="vector"
        )
        assert result.verdict is True
        assert any(row["spread"] == 3 for row in result.rows)


# ----------------------------------------------------------------------
# Property-based: release-time-0 is the paper's static model, exactly
# ----------------------------------------------------------------------
COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])


@settings(max_examples=40, **COMMON)
@given(
    seed=st.integers(0, 10_000),
    m=st.integers(1, 4),
    n=st.integers(1, 4),
)
def test_zero_releases_bit_identical_property(seed, m, n):
    """Explicit all-zero releases never change a single share."""
    inst = uniform_instance(m, n, grid=20, seed=seed)
    released = inst.with_releases((0,) * m)
    for policy in (GreedyBalance(), RoundRobin()):
        assert share_digest(policy.run(inst)) == share_digest(
            policy.run(released)
        )


@settings(max_examples=30, **COMMON)
@given(
    seed=st.integers(0, 10_000),
    spread=st.integers(0, 8),
)
def test_arrival_schedules_respect_model_property(seed, spread):
    """Feasibility, release discipline, and the lower bound hold for
    random arrival instances under GreedyBalance."""
    inst = with_arrivals(
        uniform_instance(3, 3, grid=20, seed=seed),
        max_release=spread,
        seed=seed + 1,
    )
    schedule = simulate(inst, GreedyBalance())
    assert verify_schedule(schedule).ok
    assert schedule.makespan >= inst.makespan_lower_bound()
    for (i, _j), start in schedule.start_steps.items():
        assert start >= inst.release(i)
