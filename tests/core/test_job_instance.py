"""Unit tests for Job and Instance."""

from fractions import Fraction

import pytest

from repro.core import Instance, Job
from repro.exceptions import InvalidInstanceError, UnitSizeRequiredError


class TestJob:
    def test_basic(self):
        job = Job("1/2")
        assert job.requirement == Fraction(1, 2)
        assert job.size == 1
        assert job.is_unit
        assert job.work == Fraction(1, 2)

    def test_general_size_work(self):
        job = Job("1/4", 3)
        assert job.work == Fraction(3, 4)
        assert not job.is_unit
        assert job.steps_at_full_speed() == 3

    def test_fractional_size_steps(self):
        assert Job("1/2", "5/2").steps_at_full_speed() == 3

    def test_requirement_bounds(self):
        Job(0)
        Job(1)
        with pytest.raises(InvalidInstanceError):
            Job("3/2")
        with pytest.raises(InvalidInstanceError):
            Job(-1)

    def test_size_positive(self):
        with pytest.raises(InvalidInstanceError):
            Job("1/2", 0)

    def test_immutable(self):
        job = Job("1/2")
        with pytest.raises(AttributeError):
            job.requirement = Fraction(1)  # type: ignore[misc]

    def test_equality_and_hash(self):
        assert Job("1/2") == Job("0.5") == Job(Fraction(1, 2))
        assert hash(Job("1/2")) == hash(Job("0.5"))


class TestInstanceConstruction:
    def test_from_numbers(self):
        inst = Instance([[0.5, "1/4"], [1]])
        assert inst.num_processors == 2
        assert inst.requirement(0, 1) == Fraction(1, 4)

    def test_from_percent(self):
        inst = Instance.from_percent([[50], [100]])
        assert inst.requirement(0, 0) == Fraction(1, 2)
        assert inst.requirement(1, 0) == 1

    def test_rejects_empty_system(self):
        with pytest.raises(InvalidInstanceError):
            Instance([])

    def test_rejects_empty_queue(self):
        with pytest.raises(InvalidInstanceError):
            Instance([[0.5], []])

    def test_equality_hash(self):
        a = Instance.from_requirements([["1/2"], ["1/3"]])
        b = Instance.from_requirements([[Fraction(1, 2)], [Fraction(1, 3)]])
        assert a == b and hash(a) == hash(b)


class TestInstanceDerived:
    @pytest.fixture
    def inst(self) -> Instance:
        return Instance.from_requirements(
            [["1/2", "1/4", "1/4"], ["1/3"], ["1/2", "1/2"]]
        )

    def test_shape(self, inst):
        assert inst.m == 3
        assert inst.max_jobs == 3
        assert inst.total_jobs == 6
        assert [inst.num_jobs(i) for i in range(3)] == [3, 1, 2]

    def test_m_j_sets(self, inst):
        assert inst.processors_with_at_least(1) == (0, 1, 2)
        assert inst.processors_with_at_least(2) == (0, 2)
        assert inst.processors_with_at_least(3) == (0,)
        assert inst.processors_with_at_least(4) == ()

    def test_m_j_rejects_zero(self, inst):
        with pytest.raises(ValueError):
            inst.processors_with_at_least(0)

    def test_total_work(self, inst):
        assert inst.total_work() == Fraction(1, 2) + Fraction(1, 4) * 2 + Fraction(
            1, 3
        ) + Fraction(1, 2) * 2

    def test_work_lower_bound_is_ceil(self, inst):
        assert inst.work_lower_bound() == 3  # total = 2 + 1/3

    def test_jobs_iteration_order(self, inst):
        ids = [jid for jid, _ in inst.jobs()]
        assert ids == [(0, 0), (0, 1), (0, 2), (1, 0), (2, 0), (2, 1)]

    def test_unit_size_detection(self, inst):
        assert inst.is_unit_size
        general = Instance([[Job("1/2", 2)]])
        assert not general.is_unit_size
        with pytest.raises(UnitSizeRequiredError):
            general.require_unit_size("test")

    def test_integer_grid(self, inst):
        units, den = inst.to_integer_grid()
        assert den == 12
        assert units[0] == [6, 3, 3]
        assert units[1] == [4]

    def test_restrict_to_suffix(self, inst):
        sub = inst.restrict_to_suffix([1, 1, 0])
        assert sub.num_processors == 2  # processor 1 dropped entirely
        assert sub.requirements(0) == (Fraction(1, 4), Fraction(1, 4))
        assert sub.requirements(1) == (Fraction(1, 2), Fraction(1, 2))

    def test_restrict_rejects_bad_counts(self, inst):
        with pytest.raises(ValueError):
            inst.restrict_to_suffix([4, 0, 0])
        with pytest.raises(ValueError):
            inst.restrict_to_suffix([0, 0])

    def test_restrict_all_done_rejected(self, inst):
        with pytest.raises(InvalidInstanceError):
            inst.restrict_to_suffix([3, 1, 2])


class TestObjectiveAnnotations:
    """Job.weight / Job.deadline and the Instance-level helpers."""

    def test_defaults_are_neutral(self):
        job = Job("1/2")
        assert job.weight == 1
        assert job.deadline is None
        assert job.is_unit_weight
        assert not job.has_deadline

    def test_equality_includes_annotations(self):
        assert Job("1/2") != Job("1/2", weight=2)
        assert Job("1/2") != Job("1/2", deadline=3)
        assert Job("1/2", weight=2, deadline=3) == Job("1/2", weight=2, deadline=3)

    def test_validation(self):
        import pytest

        from repro.exceptions import InvalidInstanceError

        with pytest.raises(InvalidInstanceError, match="weight must be positive"):
            Job("1/2", weight=0)
        with pytest.raises(InvalidInstanceError, match="deadline must be a step"):
            Job("1/2", deadline=0)

    def test_replace(self):
        job = Job("1/2", weight=2, deadline=3)
        assert job.replace(weight=5).weight == 5
        assert job.replace(weight=5).deadline == 3
        assert job.replace(deadline=None).deadline is None
        assert job.replace(deadline=None).weight == 2

    def test_instance_with_weights_and_deadlines(self):
        inst = Instance.from_percent([[50, 50], [50, 50]])
        assert not inst.has_weights and not inst.has_deadlines
        weighted = inst.with_weights([[1, 2], [3, 4]])
        assert weighted.has_weights
        assert weighted.total_weight() == 10
        dated = inst.with_deadlines([[1, None], [2, 3]])
        assert dated.has_deadlines
        assert dated.job(0, 1).deadline is None

    def test_shape_validation(self):
        import pytest

        from repro.exceptions import InvalidInstanceError

        inst = Instance.from_percent([[50, 50], [50, 50]])
        with pytest.raises(InvalidInstanceError):
            inst.with_weights([[1, 2]])
        with pytest.raises(InvalidInstanceError):
            inst.with_deadlines([[1], [2, 3]])

    def test_earliest_completion_times(self):
        inst = Instance(
            [[Job("1/2"), Job("1/2", 3)], [Job("1/4")]], releases=[0, 5]
        )
        earliest = inst.earliest_completion_times()
        assert earliest[(0, 0)] == 1
        assert earliest[(0, 1)] == 4  # 1 + ceil(3)
        assert earliest[(1, 0)] == 6  # release 5 + 1

    def test_annotations_survive_suffix_restriction(self):
        inst = Instance(
            [[Job("1/2", weight=2, deadline=3), Job("1/2", deadline=4)]]
        )
        suffix = inst.restrict_to_suffix([1])
        assert suffix.job(0, 0).deadline == 4
