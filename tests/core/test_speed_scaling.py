"""Unit tests for the speed-scaling interpretation (Section 3.1).

The key assertion: completion times derived through Eq. (1) (volume
fractions at speed ``min(R/r, 1)``) equal those derived through Eq. (2)
(work units at speed ``min(R, r)``) -- the paper's claimed equivalence
of the two model readings.
"""

from fractions import Fraction

import pytest

from repro.algorithms import GreedyBalance, ProportionalShare, RoundRobin
from repro.core import (
    Instance,
    Job,
    Schedule,
    completion_times_eq1,
    to_speed_scaling,
)
from repro.exceptions import InvalidScheduleError


class TestConversion:
    def test_unit_jobs(self):
        inst = Instance.from_requirements([["1/2", "3/4"]])
        view = to_speed_scaling(inst)
        assert view[0][0].work == Fraction(1, 2)
        assert view[0][0].max_speed == Fraction(1, 2)
        assert view[0][0].min_steps == 1  # unit: processable in one step

    def test_general_sizes(self):
        inst = Instance([[Job("1/2", 3)]])
        job = to_speed_scaling(inst)[0][0]
        assert job.work == Fraction(3, 2)
        assert job.max_speed == Fraction(1, 2)
        assert job.min_steps == 3

    def test_zero_requirement(self):
        job = to_speed_scaling(Instance.from_requirements([[0]]))[0][0]
        assert job.min_steps == 1


class TestEquivalence:
    @pytest.mark.parametrize(
        "policy", [GreedyBalance(), RoundRobin(), ProportionalShare()],
        ids=lambda p: p.name,
    )
    @pytest.mark.parametrize("seed", range(4))
    def test_eq1_matches_eq2_unit(self, policy, seed):
        from repro.generators import uniform_instance

        inst = uniform_instance(3, 3, grid=12, seed=seed)
        sched = policy.run(inst)
        assert completion_times_eq1(inst, sched) == dict(sched.completion_steps)

    @pytest.mark.parametrize("seed", range(4))
    def test_eq1_matches_eq2_general_sizes(self, seed):
        from repro.generators import general_size_instance

        inst = general_size_instance(2, 3, grid=8, max_size=3, seed=seed)
        sched = GreedyBalance().run(inst)
        assert completion_times_eq1(inst, sched) == dict(sched.completion_steps)

    def test_zero_requirement_jobs_agree(self):
        inst = Instance.from_requirements([[0, "1/2"]])
        sched = Schedule(inst, [[0], [Fraction(1, 2)]])
        assert completion_times_eq1(inst, sched) == dict(sched.completion_steps)

    def test_incomplete_replay_rejected(self):
        inst = Instance.from_requirements([["1/2", "1/2"]])
        sched = Schedule(inst, [[Fraction(1, 2)]], validate=False)
        with pytest.raises(InvalidScheduleError, match="unfinished"):
            completion_times_eq1(inst, sched)
