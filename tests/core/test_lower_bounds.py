"""Unit tests for the lower-bound certificates."""

from fractions import Fraction

import pytest

from repro.algorithms import GreedyBalance, opt_res_assignment
from repro.core import (
    Instance,
    Job,
    SchedulingGraph,
    best_lower_bound,
    lemma5_bound,
    lemma6_bound,
    length_bound,
    theorem7_reference,
    work_bound,
)
from repro.generators import round_robin_adversarial, uniform_instance


class TestWorkBound:
    def test_observation_1(self):
        inst = Instance.from_requirements([["1/2", "1/2"], ["3/4"]])
        assert work_bound(inst) == 2  # ceil(7/4)

    def test_general_sizes(self):
        inst = Instance([[Job("1/2", 3)]])  # work 3/2
        assert work_bound(inst) == 2


class TestLengthBound:
    def test_unit_case_is_n(self):
        inst = Instance.from_requirements([["1/10"] * 5, ["1/10"]])
        assert length_bound(inst) == 5

    def test_general_sizes_sum_ceil(self):
        inst = Instance([[Job("1/2", 2), Job("1/2", "3/2")]])
        assert length_bound(inst) == 4  # 2 + ceil(3/2)


class TestCertificates:
    def test_lemma5_on_adversarial_family(self):
        inst = round_robin_adversarial(8)
        gb = GreedyBalance().run(inst)
        graph = SchedulingGraph(gb)
        opt = opt_res_assignment(inst).makespan
        assert lemma5_bound(graph) <= opt

    def test_lemma6_on_adversarial_family(self):
        inst = round_robin_adversarial(8)
        gb = GreedyBalance().run(inst)
        graph = SchedulingGraph(gb)
        opt = opt_res_assignment(inst).makespan
        assert lemma6_bound(graph) <= opt

    @pytest.mark.parametrize("seed", range(6))
    def test_bounds_below_opt_random(self, seed):
        inst = uniform_instance(2, 5, seed=seed)
        gb = GreedyBalance().run(inst)
        graph = SchedulingGraph(gb)
        opt = opt_res_assignment(inst).makespan
        assert lemma5_bound(graph) <= opt
        assert lemma6_bound(graph) <= opt
        assert best_lower_bound(inst, gb) <= opt

    @pytest.mark.parametrize("seed", range(6))
    def test_theorem7_reference_bound(self, seed):
        """S <= (2 - 1/m) * max(LB5, LB6+1, n) for balanced schedules."""
        for m in (2, 3, 4):
            inst = uniform_instance(m, 4, seed=seed)
            gb = GreedyBalance().run(inst)
            graph = SchedulingGraph(gb)
            guarantee = 2 - Fraction(1, m)
            assert gb.makespan <= guarantee * theorem7_reference(graph)


class TestBestLowerBound:
    def test_without_schedule(self):
        inst = Instance.from_requirements([["1/2"] * 4, ["1/2"]])
        assert best_lower_bound(inst) == 4  # n dominates work=ceil(2.5)=3

    def test_with_schedule_at_least_as_strong(self, three_proc_instance):
        gb = GreedyBalance().run(three_proc_instance)
        with_cert = best_lower_bound(three_proc_instance, gb)
        without = best_lower_bound(three_proc_instance)
        assert with_cert >= without

    def test_exactness_on_tight_instance(self):
        # Fig 3 family: OPT = n+1 and the work bound is exactly n+1.
        inst = round_robin_adversarial(6)
        assert best_lower_bound(inst) == 7
        assert opt_res_assignment(inst).makespan == 7
