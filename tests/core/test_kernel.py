"""Unit tests for the unified stepping kernel and its observers."""

from fractions import Fraction

import pytest

from repro.algorithms import GreedyBalance
from repro.backends import ExactBackend, VectorBackend, get_backend
from repro.backends.base import Backend, BackendResult
from repro.core import (
    CompletionRecorder,
    ExactRuntime,
    Instance,
    ShareRecorder,
    StepObserver,
    run_kernel,
    simulate,
)
from repro.exceptions import (
    BackendError,
    InfeasibleAssignmentError,
    SimulationLimitError,
)
from repro.generators import Phase, TaskSpec
from repro.simulation import ManyCoreEngine


class RecordingObserver(StepObserver):
    """Logs the callback sequence for ordering assertions."""

    def __init__(self):
        self.calls = []

    def on_step(self, event):
        self.calls.append(("step", event.t, tuple(event.completed)))

    def on_complete(self, job, t):
        self.calls.append(("complete", t, job))

    def on_finish(self, makespan):
        self.calls.append(("finish", makespan))


class TestKernelLoop:
    def test_observer_callback_ordering(self, two_proc_instance):
        obs = RecordingObserver()
        makespan = run_kernel(
            ExactRuntime(two_proc_instance), GreedyBalance(), (obs,)
        )
        kinds = [c[0] for c in obs.calls]
        assert kinds[-1] == "finish"
        assert obs.calls[-1] == ("finish", makespan)
        assert kinds.count("finish") == 1
        # every completion follows its step and carries the step's t
        for k, call in enumerate(obs.calls):
            if call[0] == "complete":
                _, t, job = call
                step_call = next(
                    c for c in obs.calls[:k][::-1] if c[0] == "step"
                )
                assert step_call[1] == t
                assert job in step_call[2]

    def test_share_recorder_matches_schedule(self, two_proc_instance):
        recorder = ShareRecorder()
        completions = CompletionRecorder()
        run_kernel(
            ExactRuntime(two_proc_instance),
            GreedyBalance(),
            (recorder, completions),
        )
        schedule = GreedyBalance().run(two_proc_instance)
        assert [tuple(r) for r in recorder.shares][: schedule.makespan] == [
            s.shares for s in schedule.steps
        ]
        assert completions.completion_steps == dict(schedule.completion_steps)

    def test_stall_abort(self, two_proc_instance):
        with pytest.raises(SimulationLimitError, match="no progress"):
            run_kernel(
                ExactRuntime(two_proc_instance), lambda s: [0, 0], ()
            )

    def test_waiting_on_release_is_not_a_stall(self):
        """Zero-progress steps while an arrival is pending must not
        trip the stall detector."""
        inst = Instance.from_requirements(
            [["1/2"], ["1/2"]], releases=[0, 10]
        )
        # GreedyBalance finishes p0 at step 0, then waits 9 idle steps
        # for p1 -- far beyond the stall limit of 3.
        schedule = simulate(inst, GreedyBalance())
        assert schedule.makespan == 11
        assert schedule.completion_step(1, 0) == 10

    def test_step_limit_label(self, two_proc_instance):
        with pytest.raises(SimulationLimitError, match="did not finish"):
            run_kernel(
                ExactRuntime(two_proc_instance),
                GreedyBalance(),
                (),
                max_steps=1,
            )


class TestUniformInfeasibility:
    """Satellite: every layer reports over-grants the same way."""

    def test_simulate_raises_infeasible(self, two_proc_instance):
        with pytest.raises(InfeasibleAssignmentError, match="overused"):
            simulate(two_proc_instance, lambda s: [1, 1])

    def test_engine_raises_infeasible_not_value_error(self):
        tasks = [TaskSpec("a", [Phase("1/2", 1)]), TaskSpec("b", [Phase("1/2", 1)])]
        engine = ManyCoreEngine(tasks, unit_split=True)
        with pytest.raises(InfeasibleAssignmentError, match="overused"):
            engine.run(lambda s: [Fraction(1), Fraction(1)])

    def test_vector_backend_raises_infeasible(self, two_proc_instance):
        class OverGrant(GreedyBalance):
            def shares_array(self, state):
                import numpy as np

                return np.ones(state.num_processors)

        with pytest.raises(InfeasibleAssignmentError, match="overused"):
            VectorBackend().run(two_proc_instance, OverGrant())


class TestShareRecordingSafety:
    def test_buffer_reusing_policy_rows_not_aliased(self, two_proc_instance):
        """A vectorized policy that reuses one output buffer must not
        corrupt previously recorded rows (recorder copies ndarrays)."""
        import numpy as np

        from repro.algorithms.base import water_fill_array

        class BufferReuser(GreedyBalance):
            def __init__(self):
                self._buf = None

            def shares_array(self, state):
                fresh = water_fill_array(
                    state,
                    np.lexsort(
                        (-np.round(state.remaining, 9), -state.jobs_remaining)
                    ),
                )
                if self._buf is None:
                    self._buf = fresh
                else:
                    self._buf[:] = fresh
                return self._buf

        reuser_rows = VectorBackend().run(
            two_proc_instance, BufferReuser()
        ).shares
        clean_rows = VectorBackend().run(
            two_proc_instance, GreedyBalance()
        ).shares
        assert reuser_rows == pytest.approx(clean_rows)


class TestRuntimePlumbing:
    def test_backends_expose_runtimes(self, two_proc_instance):
        policy = GreedyBalance()
        exact_rt = get_backend("exact").make_runtime(two_proc_instance, policy)
        vector_rt = get_backend("vector").make_runtime(two_proc_instance, policy)
        assert run_kernel(exact_rt, policy) == run_kernel(vector_rt, policy)

    def test_default_make_runtime_raises(self, two_proc_instance):
        class Opaque(Backend):
            name = "opaque"

            def run(self, instance, policy, **kwargs):
                return BackendResult(backend=self.name, makespan=0)

        with pytest.raises(BackendError, match="kernel runtime"):
            Opaque().make_runtime(two_proc_instance, GreedyBalance())

    def test_exact_backend_is_thin_kernel_config(self, two_proc_instance):
        result = ExactBackend().run(two_proc_instance, GreedyBalance())
        assert result.schedule is not None
        assert result.makespan == result.schedule.makespan

    def test_single_step_loop_in_codebase(self):
        """Architecture guard: `while not ... all_done` appears only in
        the kernel (the one step loop) across the source tree."""
        from pathlib import Path

        import repro

        src = Path(repro.__file__).parent
        offenders = []
        for path in src.rglob("*.py"):
            text = path.read_text()
            if "all_done" in text and "while not" in text:
                for line in text.splitlines():
                    if "while not" in line and "all_done" in line:
                        offenders.append(path.name)
        assert offenders == ["kernel.py"]
