"""Unit tests for the exact arithmetic layer."""

from decimal import Decimal
from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.numerics import (
    clamp01,
    common_denominator,
    format_frac,
    frac_ceil,
    frac_floor,
    frac_sum,
    is_share,
    parse_frac,
    quantize,
    to_frac,
    to_frac_seq,
)


class TestToFrac:
    def test_int(self):
        assert to_frac(3) == Fraction(3)

    def test_fraction_passthrough(self):
        f = Fraction(2, 7)
        assert to_frac(f) is f

    def test_string_ratio(self):
        assert to_frac("3/7") == Fraction(3, 7)

    def test_string_decimal(self):
        assert to_frac("0.35") == Fraction(7, 20)

    def test_decimal(self):
        assert to_frac(Decimal("0.1")) == Fraction(1, 10)

    def test_float_uses_intended_decimal_value(self):
        # The exact binary expansion of 0.1 is NOT 1/10; the conversion
        # must recover what the user meant.
        assert to_frac(0.1) == Fraction(1, 10)
        assert to_frac(0.25) == Fraction(1, 4)

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            to_frac(True)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            to_frac(float("nan"))

    def test_inf_rejected(self):
        with pytest.raises(ValueError):
            to_frac(float("inf"))

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            to_frac([1])  # type: ignore[arg-type]

    def test_seq(self):
        assert to_frac_seq([1, "1/2"]) == (Fraction(1), Fraction(1, 2))


class TestCeilFloorSum:
    def test_ceil_integer(self):
        assert frac_ceil(Fraction(4)) == 4

    def test_ceil_fraction(self):
        assert frac_ceil(Fraction(7, 2)) == 4

    def test_ceil_negative(self):
        assert frac_ceil(Fraction(-7, 2)) == -3

    def test_floor(self):
        assert frac_floor(Fraction(7, 2)) == 3

    def test_sum_empty(self):
        assert frac_sum([]) == 0

    def test_sum_exact(self):
        assert frac_sum(["1/3", "1/3", "1/3"]) == 1

    @given(st.lists(st.fractions(min_value=0, max_value=1), max_size=10))
    def test_sum_matches_builtin(self, values):
        assert frac_sum(values) == sum(values, Fraction(0))


class TestGrid:
    def test_common_denominator(self):
        assert common_denominator(["1/2", "1/3"]) == 6

    def test_common_denominator_empty(self):
        assert common_denominator([]) == 1

    def test_quantize_default(self):
        units, den = quantize(["1/2", "1/3"])
        assert den == 6
        assert units == [3, 2]

    def test_quantize_custom_denominator(self):
        units, den = quantize(["1/2"], denominator=10)
        assert units == [5] and den == 10

    def test_quantize_rejects_bad_denominator(self):
        with pytest.raises(ValueError):
            quantize(["1/3"], denominator=10)

    @given(st.lists(st.fractions(min_value=0, max_value=1), min_size=1, max_size=6))
    def test_quantize_roundtrip(self, values):
        units, den = quantize(values)
        assert [Fraction(u, den) for u in units] == [Fraction(v) for v in values]


class TestFormatting:
    def test_integer(self):
        assert format_frac(Fraction(5)) == "5"

    def test_terminating_decimal(self):
        assert format_frac(Fraction(7, 20)) == "0.35"

    def test_non_terminating_falls_back_to_ratio(self):
        assert format_frac(Fraction(1, 3)) == "1/3"

    def test_long_decimal_falls_back(self):
        assert format_frac(Fraction(1, 2**10)) == f"1/{2**10}"

    @given(st.fractions(min_value=-2, max_value=2))
    def test_parse_roundtrip(self, f):
        assert parse_frac(format_frac(f)) == f


class TestShares:
    def test_is_share(self):
        assert is_share(0) and is_share(1) and is_share("1/2")
        assert not is_share("3/2") and not is_share(-1)

    def test_clamp(self):
        assert clamp01(Fraction(3, 2)) == 1
        assert clamp01(Fraction(-1)) == 0
        assert clamp01(Fraction(1, 2)) == Fraction(1, 2)
