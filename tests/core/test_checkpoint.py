"""Round-trip tests for the kernel checkpoint layer.

The contract under test: suspending a run at any step boundary,
serializing the :class:`~repro.core.checkpoint.KernelCheckpoint` to
JSON, restoring it into a fresh runtime, and continuing must be
**bit-identical** to the uninterrupted run -- same makespan, same
completion steps, same objective value, same recorded shares -- on
both the exact and the vector backend, across every registered policy,
multiple resources, arrivals, weights, and deadlines.  Corrupted or
version-skewed documents must raise the typed ``CheckpointError``.
"""

import json

import pytest

from repro.algorithms import available_policies, get_policy
from repro.backends.vector import VectorRuntime
from repro.core import (
    CompletionRecorder,
    ExactRuntime,
    Instance,
    KernelCheckpoint,
    ObjectiveRecorder,
    ShareRecorder,
    checkpoint_run,
    restore_runtime,
    run_kernel,
)
from repro.exceptions import CheckpointError
from repro.generators import (
    multi_resource_instance,
    uniform_instance,
    with_arrivals,
    with_deadlines,
    with_weights,
)
from repro.objectives import get_objective

BACKENDS = ("exact", "vector")


def _runtime(kind: str, instance: Instance):
    return ExactRuntime(instance) if kind == "exact" else VectorRuntime(instance)


def _observers(instance: Instance):
    return [
        CompletionRecorder(),
        ObjectiveRecorder(get_objective("weighted-flow"), instance),
    ]


def _full_run(instance, policy, kind):
    obs = _observers(instance)
    makespan = run_kernel(_runtime(kind, instance), policy, obs)
    return makespan, obs[0].completion_steps, obs[1].value


def _resumed_run(instance, policy, kind, cut, *, via_json=True):
    """Run to step *cut*, checkpoint, (de)serialize, resume to the end."""
    obs = _observers(instance)
    rt = _runtime(kind, instance)
    suspended = run_kernel(
        rt, policy, obs, stop=lambda r: r.t >= cut
    )
    ckpt = checkpoint_run(rt, obs)
    if via_json:
        ckpt = KernelCheckpoint.from_json(ckpt.to_json())
    fresh = _observers(instance)
    rt2 = restore_runtime(ckpt, observers=fresh)
    makespan = run_kernel(rt2, policy, fresh)
    if suspended is not None:
        # the stop predicate never fired: the run had already finished
        assert makespan == suspended
    return makespan, fresh[0].completion_steps, fresh[1].value


@pytest.fixture(scope="module")
def annotated_instance() -> Instance:
    """Arrivals + skewed weights + mixed deadlines on one instance."""
    inst = uniform_instance(3, 4, seed=7)
    inst = with_arrivals(inst, max_release=3, seed=11)
    inst = with_weights(inst, profile="skewed", seed=13)
    return with_deadlines(inst, profile="mixed", seed=17)


class TestRoundTripAllPolicies:
    @pytest.mark.parametrize("kind", BACKENDS)
    @pytest.mark.parametrize("policy_name", available_policies())
    def test_resume_matches_uninterrupted(
        self, annotated_instance, policy_name, kind
    ):
        policy = get_policy(policy_name)
        expected = _full_run(annotated_instance, policy, kind)
        got = _resumed_run(annotated_instance, policy, kind, cut=2)
        assert got == expected

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_every_cut_point(self, annotated_instance, kind):
        """Suspending at *any* boundary resumes bit-identically."""
        policy = get_policy("greedy-balance")
        expected = _full_run(annotated_instance, policy, kind)
        makespan = expected[0]
        for cut in range(1, makespan + 2):
            assert _resumed_run(annotated_instance, policy, kind, cut) == expected


class TestRoundTripMultiResource:
    @pytest.mark.parametrize("kind", BACKENDS)
    @pytest.mark.parametrize("k", [1, 2, 3])
    @pytest.mark.parametrize(
        "policy_name", ["greedy-balance", "proportional-share"]
    )
    def test_resume_matches(self, k, policy_name, kind):
        inst = multi_resource_instance(3, 3, k, seed=5)
        policy = get_policy(policy_name)
        expected = _full_run(inst, policy, kind)
        assert _resumed_run(inst, policy, kind, cut=1) == expected


class TestShareRows:
    """ShareRecorder is deliberately stateless: a resumed run records
    exactly the suffix rows of the uninterrupted run."""

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_suffix_rows(self, annotated_instance, kind):
        policy = get_policy("round-robin")
        full = ShareRecorder()
        run_kernel(_runtime(kind, annotated_instance), policy, [full])
        cut = 2
        rt = _runtime(kind, annotated_instance)
        run_kernel(rt, policy, stop=lambda r: r.t >= cut)
        ckpt = KernelCheckpoint.from_json(checkpoint_run(rt).to_json())
        suffix = ShareRecorder()
        run_kernel(restore_runtime(ckpt), policy, [suffix])
        assert [list(r) for r in suffix.shares] == [
            list(r) for r in full.shares[cut:]
        ]


class TestSerializationExactness:
    def test_exact_state_survives_json(self):
        inst = Instance.from_requirements([["1/3", "1/7"], ["2/3", "5/7"]])
        rt = ExactRuntime(inst)
        run_kernel(rt, get_policy("greedy-balance"), stop=lambda r: r.t >= 1)
        ckpt = checkpoint_run(rt)
        back = KernelCheckpoint.from_json(ckpt.to_json())
        assert back.state == ckpt.state
        assert back.instance == inst
        assert back.kind == "exact"
        assert back.t == 1

    def test_vector_floats_survive_json(self, annotated_instance):
        rt = VectorRuntime(annotated_instance, tol=1e-9)
        run_kernel(rt, get_policy("greedy-balance"), stop=lambda r: r.t >= 2)
        ckpt = checkpoint_run(rt)
        back = KernelCheckpoint.from_json(ckpt.to_json())
        assert back.state == ckpt.state  # repr round-trip is exact
        rt2 = restore_runtime(back)
        assert rt2.tol == rt.tol
        assert list(rt2.state.remaining) == list(rt.state.remaining)

    def test_finished_run_checkpoints(self, annotated_instance):
        rt = ExactRuntime(annotated_instance)
        makespan = run_kernel(rt, get_policy("greedy-balance"))
        ckpt = checkpoint_run(rt)
        assert ckpt.t == makespan
        # resuming a finished run terminates immediately at the same step
        assert run_kernel(restore_runtime(ckpt), get_policy("greedy-balance")) == makespan


class TestCorruption:
    @pytest.fixture()
    def document(self, annotated_instance) -> dict:
        rt = ExactRuntime(annotated_instance)
        run_kernel(rt, get_policy("greedy-balance"), stop=lambda r: r.t >= 2)
        return checkpoint_run(rt).to_dict()

    def test_tampered_state_digest_mismatch(self, document):
        document["state"]["t"] = 99
        with pytest.raises(CheckpointError, match="digest"):
            KernelCheckpoint.from_dict(document)

    def test_tampered_instance_digest_mismatch(self, document):
        document["instance"]["releases"][0] += 1
        with pytest.raises(CheckpointError, match="digest"):
            KernelCheckpoint.from_dict(document)

    def test_version_skew(self, document):
        document["version"] = 999
        with pytest.raises(CheckpointError, match="version"):
            KernelCheckpoint.from_dict(document)

    def test_wrong_format_tag(self, document):
        document["format"] = "something-else"
        with pytest.raises(CheckpointError, match="not a kernel checkpoint"):
            KernelCheckpoint.from_dict(document)

    def test_unknown_kind_rejected(self, document):
        document["kind"] = "quantum"
        document["digest"] = None
        # recompute a valid digest so the kind check itself is exercised
        doc = KernelCheckpoint(
            kind="exact",
            instance=Instance.from_percent([[50]]),
            state={"t": 0},
        ).to_dict()
        doc["kind"] = "quantum"
        import hashlib

        trimmed = {k: v for k, v in doc.items() if k != "digest"}
        doc["digest"] = hashlib.sha256(
            json.dumps(trimmed, sort_keys=True, separators=(",", ":")).encode()
        ).hexdigest()
        with pytest.raises(CheckpointError, match="kind"):
            KernelCheckpoint.from_dict(doc)

    def test_unparseable_json(self):
        with pytest.raises(CheckpointError, match="unparseable"):
            KernelCheckpoint.from_json("{not json")

    def test_non_dict_document(self):
        with pytest.raises(CheckpointError, match="must be a dict"):
            KernelCheckpoint.from_dict([1, 2, 3])

    def test_malformed_state_payload_on_restore(self, document):
        ckpt = KernelCheckpoint.from_dict(document)
        bad = KernelCheckpoint(
            kind=ckpt.kind,
            instance=ckpt.instance,
            state={**ckpt.state, "done": [99] * 3},
            observers=ckpt.observers,
        )
        with pytest.raises(CheckpointError):
            restore_runtime(bad)


class TestObserverRestore:
    def test_observer_count_mismatch(self, two_proc_instance):
        rt = ExactRuntime(two_proc_instance)
        run_kernel(rt, get_policy("greedy-balance"), stop=lambda r: r.t >= 1)
        ckpt = checkpoint_run(rt, [CompletionRecorder()])
        with pytest.raises(CheckpointError, match="observer"):
            restore_runtime(
                ckpt, observers=[CompletionRecorder(), CompletionRecorder()]
            )

    def test_stateless_observer_with_state_payload(self, two_proc_instance):
        rt = ExactRuntime(two_proc_instance)
        run_kernel(rt, get_policy("greedy-balance"), stop=lambda r: r.t >= 1)
        ckpt = checkpoint_run(rt, [CompletionRecorder()])
        # pretend the captured CompletionRecorder state belongs to a
        # ShareRecorder: stateless observers must reject foreign state
        with pytest.raises(CheckpointError, match="stateless"):
            restore_runtime(ckpt, observers=[ShareRecorder()])

    def test_resume_without_observers_is_legal(self, two_proc_instance):
        rt = ExactRuntime(two_proc_instance)
        run_kernel(rt, get_policy("greedy-balance"), stop=lambda r: r.t >= 1)
        ckpt = checkpoint_run(rt, [CompletionRecorder()])
        assert run_kernel(
            restore_runtime(ckpt), get_policy("greedy-balance")
        ) is not None


class TestExtension:
    """Restoring into a grown instance: the service-layer primitive."""

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_tail_append_and_new_queue(self, kind):
        small = Instance.from_percent([[50, 30], [40, 60]])
        policy = get_policy("greedy-balance")
        rt = _runtime(kind, small)
        run_kernel(rt, policy, stop=lambda r: r.t >= 1)
        ckpt = KernelCheckpoint.from_json(checkpoint_run(rt).to_json())
        big = Instance.from_percent(
            [[50, 30, 20], [40, 60], [70]]
        ).with_releases([0, 0, 2])
        rt2 = restore_runtime(ckpt, instance=big)
        makespan = run_kernel(rt2, policy)
        assert makespan is not None and makespan >= 2

    def test_prefix_mutation_rejected(self):
        small = Instance.from_percent([[50, 30], [40, 60]])
        rt = ExactRuntime(small)
        run_kernel(rt, get_policy("greedy-balance"), stop=lambda r: r.t >= 1)
        ckpt = checkpoint_run(rt)
        mutated = Instance.from_percent([[55, 30], [40, 60]])
        with pytest.raises(CheckpointError, match="prefix"):
            restore_runtime(ckpt, instance=mutated)

    def test_release_change_rejected(self):
        small = Instance.from_percent([[50, 30], [40, 60]])
        rt = ExactRuntime(small)
        run_kernel(rt, get_policy("greedy-balance"), stop=lambda r: r.t >= 1)
        ckpt = checkpoint_run(rt)
        shifted = small.with_releases([0, 3])
        with pytest.raises(CheckpointError, match="release"):
            restore_runtime(ckpt, instance=shifted)

    def test_dropped_processor_rejected(self):
        small = Instance.from_percent([[50, 30], [40, 60]])
        rt = ExactRuntime(small)
        run_kernel(rt, get_policy("greedy-balance"), stop=lambda r: r.t >= 1)
        ckpt = checkpoint_run(rt)
        narrow = Instance.from_percent([[50, 30]])
        with pytest.raises(CheckpointError, match="processors"):
            restore_runtime(ckpt, instance=narrow)


class TestFastForward:
    def test_at_step_moves_clock(self, two_proc_instance):
        rt = ExactRuntime(two_proc_instance)
        run_kernel(rt, get_policy("greedy-balance"))
        ckpt = checkpoint_run(rt)
        later = ckpt.at_step(ckpt.t + 5)
        assert later.t == ckpt.t + 5
        assert ckpt.t == int(ckpt.state["t"])  # original untouched

    def test_at_step_backwards_rejected(self, two_proc_instance):
        rt = ExactRuntime(two_proc_instance)
        run_kernel(rt, get_policy("greedy-balance"))
        ckpt = checkpoint_run(rt)
        with pytest.raises(CheckpointError, match="backwards"):
            ckpt.at_step(ckpt.t - 1)


class TestUnsupportedRuntime:
    def test_checkpoint_run_rejects_foreign_runtime(self):
        class Foreign:
            instance = None

        with pytest.raises(CheckpointError, match="does not support"):
            checkpoint_run(Foreign())
