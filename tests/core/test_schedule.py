"""Unit tests for Schedule execution semantics."""

from fractions import Fraction

import pytest

from repro.core import Instance, Job, Schedule
from repro.exceptions import InvalidScheduleError

H = Fraction(1, 2)
Q = Fraction(1, 4)


class TestBasicExecution:
    def test_single_job_single_step(self):
        inst = Instance.from_requirements([["1/2"]])
        sched = Schedule(inst, [[H]])
        assert sched.makespan == 1
        assert sched.completion_step(0, 0) == 0
        assert sched.start_step(0, 0) == 0

    def test_partial_then_finish(self):
        inst = Instance.from_requirements([["1/2"]])
        sched = Schedule(inst, [[Q], [Q]])
        assert sched.makespan == 2
        assert sched.start_step(0, 0) == 0
        assert sched.completion_step(0, 0) == 1

    def test_two_processors_parallel(self):
        inst = Instance.from_requirements([["1/2"], ["1/2"]])
        sched = Schedule(inst, [[H, H]])
        assert sched.makespan == 1
        assert sched.completion_steps == {(0, 0): 0, (1, 0): 0}

    def test_sequential_jobs_one_per_step(self):
        inst = Instance.from_requirements([["1/4", "1/4"]])
        # Even with capacity to spare, the second job cannot start in
        # the first step (one job per processor per step).
        sched = Schedule(inst, [[1], [Q]])
        assert sched.makespan == 2
        assert sched.step(0).processed[0] == Q  # capped by remaining work
        assert sched.completion_step(0, 1) == 1

    def test_speed_cap_wastes_excess_share(self):
        inst = Instance.from_requirements([["1/4", "3/4"]])
        sched = Schedule(inst, [[1], ["3/4"]])
        # Step 0: share 1 but requirement 1/4 -> only 1/4 work done.
        assert sched.step(0).processed[0] == Q
        assert sched.step(0).waste == 1 - Q
        assert sched.makespan == 2


class TestValidation:
    def test_overuse_rejected(self):
        inst = Instance.from_requirements([["1/2"], ["1/2"]])
        with pytest.raises(InvalidScheduleError, match="overused"):
            Schedule(inst, [["3/4", "1/2"]])

    def test_negative_share_rejected(self):
        inst = Instance.from_requirements([["1/2"]])
        with pytest.raises(InvalidScheduleError, match="outside"):
            Schedule(inst, [["-1/4"]])

    def test_wrong_width_rejected(self):
        inst = Instance.from_requirements([["1/2"], ["1/2"]])
        with pytest.raises(InvalidScheduleError, match="entries"):
            Schedule(inst, [[H]])

    def test_incomplete_rejected(self):
        inst = Instance.from_requirements([["1/2", "1/2"]])
        with pytest.raises(InvalidScheduleError, match="unfinished"):
            Schedule(inst, [[H]])

    def test_validate_false_allows_incomplete(self):
        inst = Instance.from_requirements([["1/2", "1/2"]])
        sched = Schedule(inst, [[H]], validate=False)
        assert sched.makespan == 1


class TestTrim:
    def test_trailing_idle_steps_trimmed(self):
        inst = Instance.from_requirements([["1/2"]])
        sched = Schedule(inst, [[H], [0], [0]])
        assert sched.makespan == 1

    def test_mid_schedule_idle_steps_kept(self):
        inst = Instance.from_requirements([["1/4", "1/4"]])
        sched = Schedule(inst, [[Q], [0], [Q]])
        assert sched.makespan == 3

    def test_trim_disabled(self):
        inst = Instance.from_requirements([["1/2"]])
        sched = Schedule(inst, [[H], [0]], trim=False)
        assert sched.makespan == 2


class TestPaperNotation:
    @pytest.fixture
    def sched(self) -> Schedule:
        inst = Instance.from_requirements([["1/2", "1/2"], ["3/4"]])
        return Schedule(inst, [[H, Q], [H, H]])

    def test_jobs_remaining(self, sched):
        assert sched.jobs_remaining(0, 0) == 2  # n_0(t=0) = 2
        assert sched.jobs_remaining(1, 0) == 1
        assert sched.jobs_remaining(1, 1) == 1  # 3/4-job not done yet
        assert sched.jobs_remaining(2, 0) == 0  # after the end

    def test_active_jobs_edges(self, sched):
        assert sched.active_jobs(0) == ((0, 0), (1, 0))
        assert sched.active_jobs(1) == ((0, 1), (1, 0))

    def test_finishes_job_at(self, sched):
        assert set(sched.finishes_job_at(0)) == {(0, 0)}
        assert set(sched.finishes_job_at(1)) == {(0, 1), (1, 0)}

    def test_resource_given(self, sched):
        assert sched.resource_given(1, 0) == Fraction(3, 4)


class TestGeneralSizes:
    def test_multi_step_job(self):
        inst = Instance([[Job("1/2", 3)]])  # work = 3/2
        sched = Schedule(inst, [[H], [H], [H]])
        assert sched.makespan == 3
        assert sched.completion_step(0, 0) == 2

    def test_speed_cap_binds_for_general_sizes(self):
        inst = Instance([[Job("1/2", 2)]])  # work = 1
        # Granting the full resource only processes at speed 1/2.
        sched = Schedule(inst, [[1], [1]])
        assert sched.step(0).processed[0] == H
        assert sched.makespan == 2


class TestZeroRequirementJobs:
    def test_zero_job_occupies_one_step(self):
        inst = Instance.from_requirements([[0, 0]])
        sched = Schedule(inst, [[0], [0]])
        assert sched.makespan == 2
        assert sched.completion_step(0, 0) == 0
        assert sched.completion_step(0, 1) == 1

    def test_zero_job_completion_steps_not_trimmed(self):
        inst = Instance.from_requirements([["1/2", 0]])
        sched = Schedule(inst, [[H], [0]])
        assert sched.makespan == 2


class TestAggregates:
    def test_utilization_and_waste(self):
        inst = Instance.from_requirements([["1/2", "1/2"]])
        sched = Schedule(inst, [[H], [H]])
        assert sched.utilization() == H
        assert sched.total_waste() == 1

    def test_equality(self, two_proc_instance):
        from repro.algorithms import GreedyBalance

        a = GreedyBalance().run(two_proc_instance)
        b = GreedyBalance().run(two_proc_instance)
        assert a == b


class TestObjectiveAccessors:
    """Schedule's objective-layer accessors."""

    def test_completion_times_are_one_based(self, two_proc_instance):
        from repro.algorithms import GreedyBalance

        sched = GreedyBalance().run(two_proc_instance)
        times = sched.completion_times
        steps = sched.completion_steps
        assert times == {jid: t + 1 for jid, t in steps.items()}

    def test_objective_value_by_name_and_instance(self, two_proc_instance):
        from repro.algorithms import GreedyBalance
        from repro.objectives import Makespan

        sched = GreedyBalance().run(two_proc_instance)
        assert sched.objective_value("makespan") == sched.makespan
        assert sched.objective_value(Makespan()) == sched.makespan

    def test_objective_value_flow(self, two_proc_instance):
        from repro.algorithms import GreedyBalance
        from repro.analysis import total_completion_time

        sched = GreedyBalance().run(two_proc_instance)
        assert sched.objective_value("weighted-flow") == total_completion_time(
            sched
        )

    def test_lateness_by_job(self):
        from repro.algorithms import GreedyBalance
        from repro.core import Instance

        inst = Instance.from_percent([[100], [100]]).with_deadlines([[1], [1]])
        sched = GreedyBalance().run(inst)
        late = sched.lateness_by_job()
        assert late == {(1, 0): 1} or late == {(0, 0): 1}
        plain = GreedyBalance().run(Instance.from_percent([[100], [100]]))
        assert plain.lateness_by_job() == {}
