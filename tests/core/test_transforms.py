"""Unit tests for the Lemma 1 transformation passes."""

from fractions import Fraction

import pytest

from repro.core import Instance, Job, Schedule, make_nice, make_non_wasting
from repro.core.properties import is_nice, is_non_wasting
from repro.exceptions import UnitSizeRequiredError
from repro.generators import fig2_unnested_schedule

H = Fraction(1, 2)
Q = Fraction(1, 4)


class TestMakeNonWasting:
    def test_pulls_work_earlier(self):
        inst = Instance.from_requirements([["1/2"], ["1/2"]])
        # Wasteful: each job dribbled over two steps.
        wasteful = Schedule(inst, [[Q, Q], [Q, Q]])
        assert not is_non_wasting(wasteful)
        fixed = make_non_wasting(wasteful)
        assert is_non_wasting(fixed)
        assert fixed.makespan <= wasteful.makespan
        assert fixed.makespan == 1

    def test_already_non_wasting_unchanged_makespan(self):
        inst = Instance.from_requirements([["1/2"], ["1/2"]])
        good = Schedule(inst, [[H, H]])
        assert make_non_wasting(good).makespan == 1

    def test_rejects_general_sizes(self):
        inst = Instance([[Job("1/2", 2)]])
        sched = Schedule(inst, [[H], [H]])
        with pytest.raises(UnitSizeRequiredError):
            make_non_wasting(sched)


class TestMakeNice:
    def test_fig2_unnested_repaired(self):
        repaired = make_nice(fig2_unnested_schedule())
        assert is_nice(repaired)
        assert repaired.makespan <= 4

    def test_idempotent_on_nice_schedules(self, two_proc_instance):
        from repro.algorithms import GreedyBalance

        nice = GreedyBalance().run(two_proc_instance)
        assert is_nice(nice)
        again = make_nice(nice)
        assert again.makespan == nice.makespan
        assert is_nice(again)

    def test_wasteful_crossing_schedule(self):
        # Three processors, all jobs partially processed in step 0 --
        # neither progressive nor nested as written.
        inst = Instance.from_requirements([["1/2", "1/2"], ["3/4"], ["3/4"]])
        messy = Schedule(
            inst,
            [
                [Q, Q, H],
                [Q, H, Q],
                [H, 0, 0],
                [H, 0, 0],
            ],
        )
        fixed = make_nice(messy)
        assert is_nice(fixed)
        assert fixed.makespan <= messy.makespan

    def test_preserves_makespan_bound_on_random_messy_schedules(self):
        # A deterministic "dribble" policy creating many partials.
        inst = Instance.from_requirements(
            [["2/5", "3/5"], ["4/5", "1/5"]]
        )
        rows = [
            ["1/5", "2/5"],
            ["1/5", "2/5"],
            ["1/5", 0],
            ["1/5", "1/5"],
            ["2/5", 0],
        ]
        messy = Schedule(inst, rows)
        fixed = make_nice(messy)
        assert is_nice(fixed)
        assert fixed.makespan <= messy.makespan
        # Work is conserved: same instance completes.
        assert fixed.instance == inst
