"""Edge-instance pinning: requirement-0 ("free") and requirement-1 jobs.

A requirement-0 job consumes no resource (its work ``r * p`` is 0), so
the model completes it in the first step its processor is active --
one job per step, since a processor cannot start its successor within
the same step.  A requirement-1 job monopolizes the resource for a
full step.  These tests pin that behavior on both backends so the
sequencing layer (which may surface such jobs in any position) cannot
silently change it.
"""

import pytest

from repro.backends import cross_validate
from repro.core import Instance, run_policy

POLICIES = ("greedy-balance", "round-robin", "greedy-finish-jobs")
BACKENDS = ("exact", "vector")


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("policy", POLICIES)
class TestFreeJobs:
    def test_all_free_jobs_complete_one_per_step(self, policy, backend):
        # 3 free jobs on p0, 1 on p1: the queue length dictates the
        # makespan (one completion per processor per step, no resource
        # needed).
        inst = Instance.from_requirements([[0, 0, 0], [0]])
        result = run_policy(inst, policy, backend=backend)
        assert result.makespan == 3
        assert result.completion_steps[(0, 2)] == 2
        assert result.completion_steps[(1, 0)] == 0

    def test_free_job_rides_along_with_busy_processors(self, policy, backend):
        inst = Instance.from_requirements([[0, 0], [1, "1/2"]])
        result = run_policy(inst, policy, backend=backend)
        assert result.makespan == 2
        # Free jobs finish in lockstep with the queue position, while
        # the full-requirement job takes its dedicated step.
        assert result.completion_steps[(0, 0)] == 0
        assert result.completion_steps[(0, 1)] == 1
        assert result.completion_steps[(1, 0)] == 0

    def test_free_jobs_consume_no_resource(self, policy, backend):
        inst = Instance.from_requirements([[0], [1]])
        result = run_policy(inst, policy, backend=backend)
        assert result.makespan == 1
        rows = result.share_rows()
        # Whatever was granted to the free job, it processed nothing:
        # all resource-time went to the requirement-1 job.
        total_processed = sum(float(x) for row in result.processed for x in row)
        assert total_processed == pytest.approx(1.0)
        assert len(rows) == 1


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("policy", POLICIES)
class TestFullRequirementJobs:
    def test_requirement_one_jobs_serialize(self, policy, backend):
        # Three unit jobs of requirement 1 cannot overlap at all: the
        # makespan is exactly the job count (Observation 1 is tight).
        inst = Instance.from_requirements([[1, 1], [1]])
        result = run_policy(inst, policy, backend=backend)
        assert result.makespan == 3

    def test_requirement_one_respects_work_bound(self, policy, backend):
        inst = Instance.from_requirements([[1], [1], [1], [1]])
        result = run_policy(inst, policy, backend=backend)
        assert result.makespan == inst.work_lower_bound() == 4


@pytest.mark.parametrize("policy", POLICIES)
def test_edge_instances_crosscheck_exact_vs_vector(policy):
    cases = [
        Instance.from_requirements([[0, 0, 0], [0]]),
        Instance.from_requirements([[0, 0], [1, "1/2"]]),
        Instance.from_requirements([[1, 1], [1]]),
        Instance.from_requirements([[0, 1, 0], [1, 0, 1]]),
    ]
    for inst in cases:
        check = cross_validate(inst, policy)
        assert check.ok, (policy, inst)
        assert check.exact_makespan == check.vector_makespan
