"""Unit tests for the scheduling hypergraph (Section 3.2)."""

from fractions import Fraction

import networkx as nx
import pytest

from repro.algorithms import GreedyBalance, GreedyFinishJobs
from repro.core import Instance, Job, Schedule, SchedulingGraph
from repro.exceptions import UnitSizeRequiredError
from repro.generators import fig1_instance


@pytest.fixture
def fig1_graph() -> SchedulingGraph:
    schedule = GreedyFinishJobs().run(fig1_instance())
    return SchedulingGraph(schedule)


class TestFig1Structure:
    """The exact structure of Figure 1b."""

    def test_six_edges(self, fig1_graph):
        assert len(fig1_graph.edges) == 6

    def test_three_components_left_to_right(self, fig1_graph):
        assert fig1_graph.num_components == 3
        firsts = [c.first_step for c in fig1_graph.components]
        assert firsts == sorted(firsts)

    def test_component_shapes(self, fig1_graph):
        shapes = [
            (c.klass, c.num_edges, c.num_nodes) for c in fig1_graph.components
        ]
        assert shapes == [(3, 2, 5), (3, 3, 6), (1, 1, 1)]

    def test_edges_match_figure(self, fig1_graph):
        assert fig1_graph.edges[0] == ((0, 0), (1, 0), (2, 0))
        assert fig1_graph.edges[5] == ((1, 4),)

    def test_component_membership(self, fig1_graph):
        assert fig1_graph.component_of((0, 0)).index == 0
        assert fig1_graph.component_of((2, 2)).index == 1
        assert fig1_graph.component_of((1, 4)).index == 2

    def test_node_weight(self, fig1_graph):
        assert fig1_graph.node_weight((1, 2)) == Fraction(9, 10)


class TestStructuralChecks:
    def test_observation_2(self, fig1_graph):
        assert fig1_graph.check_observation_2()

    def test_classes_decreasing(self, fig1_graph):
        assert fig1_graph.check_classes_decreasing()

    def test_lemma_2_on_balanced_schedule(self, three_proc_instance):
        sched = GreedyBalance().run(three_proc_instance)
        graph = SchedulingGraph(sched)
        assert graph.check_lemma_2()
        assert graph.check_observation_2()

    def test_mean_edges(self, fig1_graph):
        assert fig1_graph.mean_edges_per_component() == Fraction(6, 3)


class TestEdgeCases:
    def test_single_processor_single_component(self):
        inst = Instance.from_requirements([["1/2", "1/2"]])
        sched = GreedyBalance().run(inst)
        graph = SchedulingGraph(sched)
        assert graph.num_components == 2  # each job alone: edge size 1
        assert all(c.klass == 1 for c in graph.components)

    def test_one_big_component(self):
        # Jobs that never finish together chain into one component.
        inst = Instance.from_requirements([["3/4", "3/4"], ["3/4", "3/4"]])
        sched = GreedyBalance().run(inst)
        graph = SchedulingGraph(sched)
        assert graph.num_components == 1
        assert graph.components[0].num_nodes == 4

    def test_rejects_general_sizes(self):
        inst = Instance([[Job("1/2", 2)]])
        sched = Schedule(inst, [[Fraction(1, 2)], [Fraction(1, 2)]])
        with pytest.raises(UnitSizeRequiredError):
            SchedulingGraph(sched)


class TestNetworkxExport:
    def test_clique_expansion_connectivity_agrees(self, fig1_graph):
        g = fig1_graph.to_networkx()
        nx_components = list(nx.connected_components(g))
        ours = [set(c.nodes) for c in fig1_graph.components]
        assert sorted(map(frozenset, nx_components)) == sorted(map(frozenset, ours))

    def test_node_attributes(self, fig1_graph):
        g = fig1_graph.to_networkx()
        assert g.nodes[(1, 2)]["weight"] == Fraction(9, 10)
        assert g.nodes[(1, 4)]["component"] == 2

    def test_edge_steps_attribute(self, fig1_graph):
        g = fig1_graph.to_networkx()
        # (0,0) and (1,0) are both in the first hyperedge (t=0).
        assert 0 in g.edges[(0, 0), (1, 0)]["steps"]
