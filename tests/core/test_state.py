"""Unit tests for Configuration (Definition 6) and StepOutcome."""

from fractions import Fraction

import pytest

from repro.core import Configuration, ExecState, Instance

H = Fraction(1, 2)
Q = Fraction(1, 4)


@pytest.fixture
def instance() -> Instance:
    return Instance.from_requirements([["1/2", "1/2"], ["3/4"]])


class TestConfiguration:
    def test_initial(self, instance):
        cfg = Configuration.initial(instance)
        assert cfg.t == 0
        assert cfg.core == (0, 0)
        assert cfg.support == ()
        assert not cfg.is_final(instance)

    def test_support_lists_partial_jobs(self):
        cfg = Configuration(t=1, completed=(0, 0), spent=(Q, Fraction(0)))
        assert cfg.support == (0,)

    def test_final_detection(self, instance):
        cfg = Configuration(t=3, completed=(2, 1), spent=(Fraction(0),) * 2)
        assert cfg.is_final(instance)

    def test_step_equal(self):
        a = Configuration(t=2, completed=(1, 0), spent=(Q, Fraction(0)))
        b = Configuration(t=2, completed=(1, 0), spent=(H, Fraction(0)))
        c = Configuration(t=3, completed=(1, 0), spent=(Q, Fraction(0)))
        assert a.step_equal(b)
        assert not a.step_equal(c)

    def test_domination_order(self):
        base = Configuration(t=2, completed=(1, 0), spent=(Q, Fraction(0)))
        ahead = Configuration(t=2, completed=(1, 1), spent=(Q, Fraction(0)))
        invested = Configuration(t=2, completed=(1, 0), spent=(H, Fraction(0)))
        later = Configuration(t=3, completed=(1, 0), spent=(Q, Fraction(0)))
        assert ahead.dominates(base)
        assert invested.dominates(base)
        assert not base.dominates(ahead)
        assert not later.dominates(base)  # strictly later round
        assert base.dominates(later)

    def test_domination_is_reflexive_and_antisymmetric_on_distinct(self):
        a = Configuration(t=1, completed=(1, 0), spent=(Q, Fraction(0)))
        b = Configuration(t=1, completed=(0, 1), spent=(Fraction(0), Q))
        assert a.dominates(a)
        assert not a.dominates(b)
        assert not b.dominates(a)  # incomparable


class TestStepOutcome:
    def test_outcome_fields(self, instance):
        state = ExecState(instance)
        outcome = state.apply([H, H])
        assert outcome.active == (0, 0)
        assert outcome.processed == (H, H)
        assert outcome.completed == ((0, 0),)
        assert set(outcome.started) == {(0, 0), (1, 0)}

    def test_snapshot_hashable_and_changing(self, instance):
        state = ExecState(instance)
        s0 = state.snapshot()
        state.apply([H, Q])
        s1 = state.snapshot()
        assert s0 != s1
        assert hash(s0) != hash(s1) or s0 != s1
