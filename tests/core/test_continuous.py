"""Unit tests for the continuous-time variant (Section 9 outlook)."""

from fractions import Fraction

import pytest

from repro.algorithms import opt_res_assignment
from repro.core import (
    Instance,
    Job,
    continuous_greedy_balance,
    continuous_lower_bound,
)
from repro.generators import round_robin_adversarial, uniform_instance


class TestLowerBound:
    def test_work_dominates(self):
        inst = Instance.from_requirements([["3/4"], ["3/4"]])
        assert continuous_lower_bound(inst) == Fraction(3, 2)

    def test_chain_dominates(self):
        # One long chain of cheap jobs: length bound without rounding.
        inst = Instance([[Job("1/10", 2)] * 3, [Job("1/10")]])
        assert continuous_lower_bound(inst) == 6  # sum of sizes

    def test_never_above_discrete_opt(self):
        for seed in range(6):
            inst = uniform_instance(2, 4, seed=seed)
            lb = continuous_lower_bound(inst)
            assert lb <= opt_res_assignment(inst).makespan


class TestFluidGreedyBalance:
    @pytest.mark.parametrize("seed", range(6))
    def test_valid_and_above_bound(self, seed):
        inst = uniform_instance(3, 4, seed=seed)
        fluid = continuous_greedy_balance(inst)
        fluid.validate()
        assert fluid.makespan >= continuous_lower_bound(inst)

    def test_event_count_bounded_by_jobs(self):
        inst = uniform_instance(3, 4, seed=0)
        fluid = continuous_greedy_balance(inst)
        # Each piece ends with at least one completion.
        assert len(fluid.pieces) <= inst.total_jobs

    def test_all_completions_recorded(self):
        inst = uniform_instance(2, 3, seed=1)
        fluid = continuous_greedy_balance(inst)
        assert set(fluid.completion_times) == {
            (i, j) for (i, j), _ in inst.jobs()
        }

    def test_fig3_family_meets_bound_exactly(self):
        inst = round_robin_adversarial(8)
        fluid = continuous_greedy_balance(inst)
        fluid.validate()
        assert fluid.makespan == continuous_lower_bound(inst) == 9

    def test_forced_idle_chains(self):
        """Cap-constrained prefixes force idle capacity: the fluid
        greedy needs 3 while the lower bound says 2.2 -- continuous
        time does not dissolve the problem's difficulty."""
        inst = Instance.from_requirements([["1/10", "1"], ["1/10", "1"]])
        fluid = continuous_greedy_balance(inst)
        fluid.validate()
        assert continuous_lower_bound(inst) == Fraction(11, 5)
        assert fluid.makespan == 3

    def test_zero_requirement_jobs(self):
        inst = Instance.from_requirements([[0, "1/2"]])
        fluid = continuous_greedy_balance(inst)
        # The zero job completes instantly; the 1/2-job carries work
        # 1/2 at speed cap 1/2 -> exactly one time unit.
        assert fluid.completion_times[(0, 0)] == 0
        assert fluid.makespan == 1

    def test_single_processor_runs_at_cap(self):
        inst = Instance([[Job("1/2", 2), Job("1/4", 4)]])
        fluid = continuous_greedy_balance(inst)
        fluid.validate()
        # 1 work at speed 1/2, then 1 work at speed 1/4: 2 + 4.
        assert fluid.makespan == 6

    def test_general_sizes(self):
        from repro.generators import general_size_instance

        inst = general_size_instance(3, 2, max_size=3, seed=2)
        fluid = continuous_greedy_balance(inst)
        fluid.validate()
        assert fluid.makespan >= continuous_lower_bound(inst)
