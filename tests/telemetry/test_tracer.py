"""Tracer behavior: nesting, attributes, the null tracer."""

import pytest

from repro.telemetry import NULL_TRACER, Tracer


class TestSpans:
    def test_nesting_sets_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                tracer.event("ping")
        by_name = {r.name: r for r in tracer.records}
        assert set(by_name) == {"outer", "inner", "ping"}
        assert by_name["outer"].parent_id is None
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["ping"].parent_id == by_name["inner"].span_id
        assert outer is not None

    def test_records_appear_in_close_order(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert [r.name for r in tracer.records] == ["b", "a"]

    def test_span_duration_and_kind(self):
        tracer = Tracer()
        with tracer.span("work", size=3):
            pass
        (record,) = tracer.records
        assert record.kind == "span"
        assert record.dur is not None and record.dur >= 0.0
        assert record.attrs["size"] == 3

    def test_note_merges_attributes_before_close(self):
        tracer = Tracer()
        with tracer.span("run", policy="rr") as span:
            span.note(makespan=7)
        (record,) = tracer.records
        assert record.attrs == {"policy": "rr", "makespan": 7}

    def test_exception_marks_span_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        (record,) = tracer.records
        assert record.attrs["error"] == "RuntimeError"

    def test_exception_restores_current_span(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with pytest.raises(ValueError):
                with tracer.span("fails"):
                    raise ValueError()
            tracer.event("after")
        by_name = {r.name: r for r in tracer.records}
        assert by_name["after"].parent_id == by_name["outer"].span_id


class TestEventsAndComplete:
    def test_event_is_instant(self):
        tracer = Tracer()
        tracer.event("tick", t=4)
        (record,) = tracer.records
        assert record.kind == "event"
        assert record.dur is None
        assert record.attrs["t"] == 4

    def test_complete_records_given_window(self):
        tracer = Tracer()
        start = tracer.epoch + 1.0
        tracer.complete("phase", start, 0.25, t=1)
        (record,) = tracer.records
        assert record.kind == "span"
        assert record.ts == pytest.approx(1.0)
        assert record.dur == pytest.approx(0.25)

    def test_complete_nests_under_open_span(self):
        tracer = Tracer()
        with tracer.span("run") as _:
            tracer.complete("phase", tracer.epoch, 0.1)
        by_name = {r.name: r for r in tracer.records}
        assert by_name["phase"].parent_id == by_name["run"].span_id


class TestNullTracer:
    def test_disabled_and_recordless(self):
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.span("anything", x=1) as span:
            span.note(y=2)
        NULL_TRACER.event("nothing")
        NULL_TRACER.complete("nope", 0.0, 1.0)
        assert NULL_TRACER.records == []
