"""Hot-spot attribution: phase_report contents and coverage."""

import pytest

from repro.core import simulate
from repro.generators import random_instances as gen
from repro.telemetry import (
    MetricsRegistry,
    PHASES,
    TelemetrySession,
    phase_report,
    use_session,
)


def _profiled_session(m=8, n=12, repeats=2):
    instance = gen.uniform_instance(m, n, grid=100, seed=0)
    session = TelemetrySession(tracing=False)
    with use_session(session):
        for _ in range(repeats):
            simulate(instance, "greedy-balance")
    return session


class TestPhaseReport:
    def test_requires_an_instrumented_run(self):
        with pytest.raises(ValueError, match="no instrumented kernel runs"):
            phase_report(MetricsRegistry())

    def test_rows_cover_all_phases(self):
        report = phase_report(_profiled_session().metrics)
        phases = {row["phase"] for row in report["rows"]}
        assert phases == set(PHASES) | {"(unattributed)"}
        assert report["runs"] == 2

    def test_shares_sum_to_one(self):
        report = phase_report(_profiled_session().metrics)
        total = sum(
            float(row["share"].rstrip("%")) for row in report["rows"]
        )
        assert total == pytest.approx(100.0, abs=0.5)

    def test_rows_sorted_by_cost(self):
        rows = phase_report(_profiled_session().metrics)["rows"]
        totals = [row["total_s"] for row in rows]
        assert totals == sorted(totals, reverse=True)

    def test_attribution_meets_acceptance_floor(self):
        """The measured phases must explain >= 95% of kernel wall time
        on a representative exact run (the `crsharing profile`
        acceptance criterion)."""
        session = _profiled_session(m=16, n=12, repeats=2)
        report = phase_report(session.metrics)
        assert report["attributed"] >= 0.95

    def test_query_latency_aggregates_labelled_series(self):
        """Per-policy query series all count toward the query row."""
        instance = gen.uniform_instance(4, 6, grid=100, seed=1)
        session = TelemetrySession(tracing=False)
        with use_session(session):
            simulate(instance, "greedy-balance")
            simulate(instance, "round-robin")
        report = phase_report(session.metrics)
        (query_row,) = [
            row for row in report["rows"] if row["phase"] == "query"
        ]
        steps = session.metrics.counter("kernel.steps").value
        assert query_row["calls"] == steps
