"""CLI telemetry flags: --trace / --trace-format / --metrics, profile."""

import json

import pytest

from repro.cli import main
from repro.core import Instance
from repro.io import save_instance
from repro.telemetry import get_session, load_chrome_trace, read_jsonl


@pytest.fixture
def instance_file(tmp_path):
    path = tmp_path / "instance.json"
    save_instance(
        Instance.from_percent([[50, 30, 80], [40, 90, 20]]), path
    )
    return path


class TestTraceFlags:
    def test_run_writes_jsonl_trace(self, instance_file, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert (
            main(["run", str(instance_file), "--trace", str(trace)]) == 0
        )
        out = capsys.readouterr().out
        assert f"records written to {trace}" in out
        records = read_jsonl(trace)
        assert any(r.name == "kernel.run" for r in records)

    def test_run_writes_chrome_trace(self, instance_file, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        assert (
            main(
                [
                    "run",
                    str(instance_file),
                    "--trace",
                    str(trace),
                    "--trace-format",
                    "chrome",
                ]
            )
            == 0
        )
        doc = load_chrome_trace(trace)  # validates the structure
        names = {e["name"] for e in doc["traceEvents"]}
        assert "kernel.run" in names
        assert "kernel.step.query" in names
        # Spot-check the trace_event grammar Perfetto requires.
        for event in doc["traceEvents"]:
            assert event["ph"] in ("X", "i")
            if event["ph"] == "X":
                assert "dur" in event

    def test_metrics_dump(self, instance_file, capsys):
        assert main(["run", str(instance_file), "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_kernel_steps counter" in out
        assert "repro_kernel_run_seconds_count 1" in out

    def test_session_uninstalled_after_command(self, instance_file, capsys):
        main(["run", str(instance_file), "--metrics"])
        assert get_session() is None

    def test_no_flags_no_telemetry_output(self, instance_file, capsys):
        assert main(["run", str(instance_file)]) == 0
        out = capsys.readouterr().out
        assert "# TYPE" not in out
        assert "trace:" not in out

    def test_batch_trace_has_campaign_span(self, tmp_path, capsys):
        trace = tmp_path / "batch.jsonl"
        assert (
            main(
                [
                    "batch",
                    "--count",
                    "4",
                    "--m",
                    "3",
                    "--n",
                    "4",
                    "--workers",
                    "1",
                    "--trace",
                    str(trace),
                ]
            )
            == 0
        )
        records = read_jsonl(trace)
        assert any(r.name == "batch.campaign" for r in records)

    def test_crosscheck_accepts_metrics(self, capsys):
        assert (
            main(
                [
                    "crosscheck",
                    "--count",
                    "3",
                    "--m",
                    "3",
                    "--n",
                    "4",
                    "--metrics",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "result: OK" in out
        assert "repro_kernel_runs" in out


class TestProfileCommand:
    def test_prints_hot_spot_table(self, capsys):
        assert (
            main(
                [
                    "profile",
                    "--m",
                    "4",
                    "--n",
                    "6",
                    "--repeat",
                    "2",
                    "--policy",
                    "greedy-balance",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "phase" in out
        for phase in ("query", "check", "apply", "observers"):
            assert phase in out
        assert "(unattributed)" in out
        assert "attributed to phases:" in out

    def test_profiles_an_instance_file(self, instance_file, capsys):
        assert main(["profile", str(instance_file)]) == 0
        out = capsys.readouterr().out
        assert str(instance_file) in out

    def test_vector_backend_profile(self, capsys):
        assert (
            main(["profile", "--backend", "vector", "--m", "4", "--n", "6"])
            == 0
        )
        out = capsys.readouterr().out
        assert "backend=vector" in out


def test_bench_report_highlights_overhead_keys(tmp_path, capsys):
    store = {
        "benchmark": "telemetry_overhead",
        "generated_at": "2026-01-01T00:00:00",
        "rows": [
            {
                "case": "m16",
                "overhead_disabled_pct": 0.4,
                "overhead_enabled_pct": 12.0,
            }
        ],
    }
    results = tmp_path / "results"
    results.mkdir()
    (results / "BENCH_telemetry.json").write_text(json.dumps(store))
    assert main(["bench-report", "--results", str(results)]) == 0
    out = capsys.readouterr().out
    assert "overhead_disabled_pct=0.4" in out
    assert "overhead_enabled_pct=12.0" in out
