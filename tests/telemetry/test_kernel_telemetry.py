"""Kernel instrumentation: sessions, observer errors, heartbeats."""

import logging

import pytest

from repro.algorithms import get_policy
from repro.core import Instance, simulate
from repro.core.kernel import (
    CompletionRecorder,
    ExactRuntime,
    StepObserver,
    run_kernel,
)
from repro.exceptions import ObserverError
from repro.telemetry import (
    TelemetrySession,
    get_session,
    set_session,
    use_session,
)


def _instance():
    return Instance.from_percent([[50, 30, 80], [40, 90, 20]])


class TestSessionInstall:
    def test_disabled_by_default(self):
        assert get_session() is None

    def test_use_session_restores_previous(self):
        outer = TelemetrySession()
        inner = TelemetrySession()
        with use_session(outer):
            assert get_session() is outer
            with use_session(inner):
                assert get_session() is inner
            assert get_session() is outer
        assert get_session() is None

    def test_use_session_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with use_session(TelemetrySession()):
                raise RuntimeError()
        assert get_session() is None

    def test_set_session_returns_previous(self):
        session = TelemetrySession()
        assert set_session(session) is None
        assert set_session(None) is session


class TestInstrumentedRun:
    def test_run_fills_span_and_metrics(self):
        with use_session(TelemetrySession()) as session:
            schedule = simulate(_instance(), "greedy-balance")
        records = session.tracer.records
        (run_span,) = [r for r in records if r.name == "kernel.run"]
        assert run_span.attrs["makespan"] == schedule.makespan
        assert run_span.attrs["policy"] == "greedy-balance"
        metrics = session.metrics
        assert metrics.counter("kernel.steps").value == schedule.makespan
        assert metrics.counter("kernel.runs").value == 1
        assert (
            metrics.counter("kernel.completions").value
            == _instance().total_jobs
        )
        # Every phase histogram saw every step.
        for phase in ("check", "apply"):
            hist = metrics.histogram(f"kernel.{phase}_seconds")
            assert hist.count == schedule.makespan
        query = metrics.histogram(
            "kernel.query_seconds", policy="greedy-balance"
        )
        assert query.count == schedule.makespan

    def test_step_spans_nest_under_run(self):
        with use_session(TelemetrySession()) as session:
            simulate(_instance(), "round-robin")
        records = session.tracer.records
        (run_span,) = [r for r in records if r.name == "kernel.run"]
        steps = [r for r in records if r.name.startswith("kernel.step.")]
        assert steps, "expected per-step phase spans when tracing"
        assert all(r.parent_id == run_span.span_id for r in steps)

    def test_metrics_only_session_skips_step_spans(self):
        with use_session(TelemetrySession(tracing=False)) as session:
            simulate(_instance(), "greedy-balance")
        assert session.tracer.records == []
        assert session.metrics.counter("kernel.steps").value > 0

    def test_queue_wait_histogram(self):
        inst = Instance.from_percent([[100], [100]]).with_releases((0, 3))
        with use_session(TelemetrySession()) as session:
            simulate(inst, "greedy-balance")
        waits = session.metrics.histogram("kernel.job_wait_steps")
        assert waits.count == 2
        # Processor 0's job completes at step 1 (wait 1); processor 1's
        # at step 4 after release 3 (wait 1 as well).
        assert waits.values == [1, 1]

    def test_results_identical_with_and_without_session(self):
        plain = simulate(_instance(), "greedy-balance")
        with use_session(TelemetrySession()):
            traced = simulate(_instance(), "greedy-balance")
        assert traced.makespan == plain.makespan
        assert [s.shares for s in traced.steps] == [
            s.shares for s in plain.steps
        ]


class _Boom(StepObserver):
    """Observer that raises after a given number of step callbacks."""

    def __init__(self, after: int) -> None:
        self.after = after
        self.calls = 0

    def on_step(self, event) -> None:
        self.calls += 1
        if self.calls > self.after:
            raise RuntimeError("observer exploded")


class TestObserverErrors:
    def test_wrapped_in_observer_error_with_cause(self):
        runtime = ExactRuntime(_instance())
        with pytest.raises(ObserverError, match="_Boom") as info:
            run_kernel(runtime, get_policy("greedy-balance"), [_Boom(1)])
        assert isinstance(info.value.__cause__, RuntimeError)

    def test_step_fully_applied_before_error(self):
        """The failing step has already advanced the runtime: state is
        consistent, nothing is half-applied."""
        runtime = ExactRuntime(_instance())
        good = CompletionRecorder()
        with pytest.raises(ObserverError):
            run_kernel(
                runtime, get_policy("greedy-balance"), [good, _Boom(2)]
            )
        # _Boom(2) raises during the third step's dispatch -- after
        # apply, so the clock shows three fully executed steps.
        assert runtime.t == 3
        # And the earlier observer received both steps before the raise.
        assert not runtime.all_done

    def test_raised_under_telemetry_too(self):
        with use_session(TelemetrySession()):
            runtime = ExactRuntime(_instance())
            with pytest.raises(ObserverError, match="_Boom"):
                run_kernel(runtime, get_policy("greedy-balance"), [_Boom(1)])

    def test_finish_errors_are_wrapped(self):
        class BoomAtFinish(StepObserver):
            def on_finish(self, makespan: int) -> None:
                raise ValueError("bad finish")

        runtime = ExactRuntime(_instance())
        with pytest.raises(ObserverError, match="finish") as info:
            run_kernel(runtime, get_policy("greedy-balance"), [BoomAtFinish()])
        assert isinstance(info.value.__cause__, ValueError)
        assert runtime.all_done


class TestHeartbeat:
    def test_waiting_run_logs_structured_warnings(self, caplog):
        inst = Instance.from_percent([[100]]).with_releases((5,))
        runtime = ExactRuntime(inst)
        with caplog.at_level(logging.WARNING, logger="repro.kernel"):
            run_kernel(
                runtime,
                get_policy("greedy-balance"),
                heartbeat_interval=2,
            )
        waiting = [
            r for r in caplog.records if "waiting on releases" in r.message
        ]
        assert len(waiting) == 2  # waited=2 and waited=4

    def test_heartbeat_disabled_with_none(self, caplog):
        inst = Instance.from_percent([[100]]).with_releases((5,))
        with caplog.at_level(logging.WARNING, logger="repro.kernel"):
            run_kernel(
                ExactRuntime(inst),
                get_policy("greedy-balance"),
                heartbeat_interval=None,
            )
        assert not [
            r for r in caplog.records if "waiting on releases" in r.message
        ]

    def test_heartbeat_emits_trace_event_and_counter(self):
        inst = Instance.from_percent([[100]]).with_releases((5,))
        with use_session(TelemetrySession()) as session:
            run_kernel(
                ExactRuntime(inst),
                get_policy("greedy-balance"),
                heartbeat_interval=2,
            )
        beats = [
            r for r in session.tracer.records if r.name == "kernel.heartbeat"
        ]
        assert [b.attrs["waited"] for b in beats] == [2, 4]
        assert session.metrics.counter("kernel.heartbeats").value == 2

    def test_busy_run_never_heartbeats(self, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.kernel"):
            simulate(_instance(), "greedy-balance")
        assert not caplog.records
