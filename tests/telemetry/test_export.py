"""Exporter round-trips: JSONL, Chrome trace_event, metrics text."""

import json
from fractions import Fraction

import pytest

from repro.telemetry import (
    MetricsRegistry,
    TraceRecord,
    Tracer,
    chrome_trace,
    load_chrome_trace,
    read_jsonl,
    render_metrics,
    run_trace_records,
    write_chrome_trace,
    write_jsonl,
    write_trace,
)


def _sample_records():
    tracer = Tracer()
    with tracer.span("kernel.run", policy="rr", makespan=4):
        tracer.complete("kernel.step.query", tracer.epoch, 0.001, t=0)
        tracer.event("kernel.heartbeat", t=2, waited=4)
    return tracer.records


class TestJsonl:
    def test_round_trip(self, tmp_path):
        records = _sample_records()
        path = tmp_path / "trace.jsonl"
        count = write_jsonl(records, path)
        assert count == len(records)
        back = read_jsonl(path)
        assert back == records

    def test_lines_are_independent_json(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl(_sample_records(), path)
        for line in path.read_text().splitlines():
            doc = json.loads(line)
            assert {"kind", "name", "ts", "span_id"} <= set(doc)

    def test_fraction_attrs_serialize_as_floats(self, tmp_path):
        record = TraceRecord(
            kind="event",
            name="x",
            ts=0.0,
            dur=None,
            span_id=1,
            parent_id=None,
            attrs={"share": Fraction(1, 2), "row": [Fraction(1, 4)]},
        )
        path = tmp_path / "trace.jsonl"
        write_jsonl([record], path)
        (back,) = read_jsonl(path)
        assert back.attrs["share"] == 0.5
        assert back.attrs["row"] == [0.25]


class TestChromeTrace:
    def test_structure(self):
        doc = chrome_trace(_sample_records(), pid=7)
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        phases = {e["name"]: e["ph"] for e in doc["traceEvents"]}
        assert phases["kernel.run"] == "X"
        assert phases["kernel.step.query"] == "X"
        assert phases["kernel.heartbeat"] == "i"
        for event in doc["traceEvents"]:
            assert event["pid"] == 7
            assert event["cat"] == "kernel"

    def test_timestamps_are_microseconds(self):
        record = TraceRecord(
            kind="span", name="s", ts=0.5, dur=0.25, span_id=1, parent_id=None
        )
        (event,) = chrome_trace([record])["traceEvents"]
        assert event["ts"] == pytest.approx(0.5e6)
        assert event["dur"] == pytest.approx(0.25e6)

    def test_write_and_load_round_trip(self, tmp_path):
        path = tmp_path / "trace.json"
        count = write_chrome_trace(_sample_records(), path)
        doc = load_chrome_trace(path)
        assert len(doc["traceEvents"]) == count

    def test_load_rejects_non_trace_documents(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"rows": []}')
        with pytest.raises(ValueError, match="not a Chrome trace_event"):
            load_chrome_trace(path)
        path.write_text('{"traceEvents": [{"ph": "X"}]}')
        with pytest.raises(ValueError, match="missing 'name'"):
            load_chrome_trace(path)


class TestWriteTrace:
    def test_format_dispatch(self, tmp_path):
        records = _sample_records()
        jsonl = tmp_path / "t.jsonl"
        chrome = tmp_path / "t.json"
        assert write_trace(records, jsonl, format="jsonl") == len(records)
        assert write_trace(records, chrome, format="chrome") == len(records)
        assert read_jsonl(jsonl) == records
        load_chrome_trace(chrome)

    def test_unknown_format(self, tmp_path):
        with pytest.raises(ValueError, match="unknown trace format"):
            write_trace([], tmp_path / "t", format="xml")


class TestLegacyBridge:
    def test_run_trace_converts_to_records(self):
        from repro.generators.workloads import Phase, TaskSpec
        from repro.simulation import run_workload

        tasks = [
            TaskSpec("stream", [Phase("1/2", 2)]),
            TaskSpec("burst", [Phase("1/10", 1), Phase("9/10", 1)]),
        ]
        trace = run_workload(tasks, "greedy-balance", unit_split=True)
        records = run_trace_records(trace)
        assert records[0].name == "engine.run"
        assert records[0].attrs["makespan"] == trace.makespan
        steps = [r for r in records if r.name == "engine.step"]
        assert len(steps) == trace.makespan
        assert all(r.parent_id == records[0].span_id for r in steps)
        # And the converted records flow through the exporters.
        doc = chrome_trace(records)
        assert len(doc["traceEvents"]) == 1 + trace.makespan


def test_render_metrics_matches_to_text():
    registry = MetricsRegistry()
    registry.counter("kernel.steps").inc(2)
    assert render_metrics(registry) == registry.to_text(prefix="repro")
