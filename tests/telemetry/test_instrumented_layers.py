"""Backend, campaign, sequencer, and experiment instrumentation."""

import os

from repro.backends import (
    BatchRunner,
    get_backend,
    make_campaign_instances,
)
from repro.core import Instance
from repro.telemetry import TelemetrySession, use_session


def _instance():
    return Instance.from_percent([[50, 30, 80], [40, 90, 20]])


class TestBackendSpans:
    def test_exact_backend_span(self):
        with use_session(TelemetrySession()) as session:
            result = get_backend("exact").run(_instance(), "greedy-balance")
        (span,) = [
            r for r in session.tracer.records if r.name == "backend.run"
        ]
        assert span.attrs["backend"] == "exact"
        assert span.attrs["policy"] == "greedy-balance"
        assert span.attrs["makespan"] == result.makespan
        # The kernel.run span nests inside the backend span.
        (kernel,) = [
            r for r in session.tracer.records if r.name == "kernel.run"
        ]
        assert kernel.parent_id == span.span_id

    def test_vector_backend_span(self):
        with use_session(TelemetrySession()) as session:
            result = get_backend("vector").run(_instance(), "greedy-balance")
        (span,) = [
            r for r in session.tracer.records if r.name == "backend.run"
        ]
        assert span.attrs["backend"] == "vector"
        assert span.attrs["makespan"] == result.makespan

    def test_no_session_no_records(self):
        result = get_backend("exact").run(_instance(), "greedy-balance")
        assert result.makespan > 0  # ran fine without telemetry


class TestBatchTelemetry:
    def test_rows_carry_worker_pid(self):
        instances = make_campaign_instances(4, 3, 4, seed=0)
        result = BatchRunner(workers=1).run(instances)
        assert all(row["worker"] == os.getpid() for row in result.rows)

    def test_worker_throughput_aggregates(self):
        instances = make_campaign_instances(5, 3, 4, seed=0)
        result = BatchRunner(workers=1).run(instances)
        throughput = result.worker_throughput()
        (entry,) = throughput.values()
        assert entry["tasks"] == 5
        assert entry["tasks_per_second"] > 0
        summary = result.summary()
        assert summary["workers_used"] == 1
        assert str(os.getpid()) in summary["worker_throughput"]

    def test_campaign_span_and_metrics(self):
        instances = make_campaign_instances(5, 3, 4, seed=0)
        with use_session(TelemetrySession()) as session:
            BatchRunner(workers=1).run(instances)
        (span,) = [
            r
            for r in session.tracer.records
            if r.name == "batch.campaign"
        ]
        assert span.attrs["instances"] == 5
        metrics = session.metrics
        assert metrics.counter("batch.instances").value == 5
        task_hist = metrics.histogram(
            "batch.task_seconds", policy="greedy-balance", backend="vector"
        )
        assert task_hist.count == 5
        assert metrics.gauge("batch.tasks_per_second").value > 0


class TestSequencerTelemetry:
    def test_last_stats_carry_throughput_and_outcomes(self):
        from repro.sequencing import get_sequencer

        seq = get_sequencer("local-search", budget=30, seed=0)
        inst = Instance.from_percent([[80, 20, 60], [40, 90, 10]])
        seq.sequence(inst)
        stats = seq.last_stats
        assert stats["evaluations"] >= 1
        assert stats["accepted"] + stats["rejected"] + stats[
            "perturbations"
        ] == stats["evaluations"] - 1  # the initial evaluation
        assert stats["seconds"] > 0
        assert stats["evals_per_second"] > 0

    def test_search_span_and_counters(self):
        from repro.sequencing import get_sequencer

        seq = get_sequencer("local-search", budget=20, seed=0)
        inst = Instance.from_percent([[80, 20, 60], [40, 90, 10]])
        with use_session(TelemetrySession()) as session:
            seq.sequence(inst)
        (span,) = [
            r
            for r in session.tracer.records
            if r.name == "sequencer.search"
        ]
        assert span.attrs["evaluations"] == seq.last_stats["evaluations"]
        assert (
            session.metrics.counter("sequencer.evaluations").value
            == seq.last_stats["evaluations"]
        )


class TestExperimentTelemetry:
    def test_experiment_run_span(self):
        from repro.experiments import get_experiment
        from repro.experiments.runner import run_experiment

        exp = get_experiment("FIG3")
        with use_session(TelemetrySession()) as session:
            result = run_experiment(exp)
        (span,) = [
            r
            for r in session.tracer.records
            if r.name == "experiment.run"
        ]
        assert span.attrs["id"] == "FIG3"
        assert span.attrs["verdict"] == result.verdict
