"""Metrics facility: counters, gauges, histogram quantiles, exposition."""

import pytest

from repro.telemetry import Histogram, MetricsRegistry


class TestCounterGauge:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("steps").inc()
        registry.counter("steps").inc(4)
        assert registry.counter("steps").value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="only increase"):
            MetricsRegistry().counter("steps").inc(-1)

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("speed").set(10.0)
        registry.gauge("speed").set(2.5)
        assert registry.gauge("speed").value == 2.5


class TestHistogramQuantiles:
    """Nearest-rank quantiles on known distributions."""

    def test_quantiles_of_1_to_100(self):
        h = Histogram()
        for value in range(1, 101):
            h.observe(float(value))
        assert h.quantile(0.50) == 50.0
        assert h.quantile(0.90) == 90.0
        assert h.quantile(0.99) == 99.0
        assert h.quantile(1.00) == 100.0
        assert h.quantile(0.0) == 1.0

    def test_quantiles_are_observed_samples(self):
        h = Histogram()
        for value in [5.0, 1.0, 9.0, 3.0]:
            h.observe(value)
        # Nearest-rank: never interpolates between samples.
        assert h.quantile(0.5) == 3.0
        assert h.quantile(0.75) == 5.0
        assert h.quantile(0.9) == 9.0

    def test_single_sample_is_every_quantile(self):
        h = Histogram()
        h.observe(7.0)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert h.quantile(q) == 7.0

    def test_empty_histogram(self):
        h = Histogram()
        assert h.quantile(0.5) == 0.0
        assert h.mean == 0.0
        assert h.summary() == {"count": 0, "sum": 0.0}

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError, match="quantile"):
            Histogram().quantile(1.5)

    def test_summary_fields(self):
        h = Histogram()
        for value in [1.0, 2.0, 3.0, 4.0]:
            h.observe(value)
        summary = h.summary()
        assert summary["count"] == 4
        assert summary["sum"] == 10.0
        assert summary["mean"] == 2.5
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0
        assert summary["p50"] == 2.0
        assert summary["p90"] == 4.0


class TestRegistry:
    def test_labels_separate_series(self):
        registry = MetricsRegistry()
        registry.histogram("query_seconds", policy="rr").observe(1.0)
        registry.histogram("query_seconds", policy="gb").observe(2.0)
        assert registry.histogram("query_seconds", policy="rr").count == 1
        assert len(registry.find("query_seconds")) == 2

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="is a counter"):
            registry.gauge("x")

    def test_find_matches_prefix(self):
        registry = MetricsRegistry()
        registry.counter("kernel.steps")
        registry.counter("kernel.runs")
        registry.counter("batch.instances")
        names = [name for name, _, _ in registry.find("kernel.")]
        assert names == ["kernel.runs", "kernel.steps"]

    def test_snapshot_is_json_ready(self):
        import json

        registry = MetricsRegistry()
        registry.counter("steps").inc(2)
        registry.histogram("lat", policy="rr").observe(0.5)
        snapshot = registry.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        by_name = {entry["name"]: entry for entry in snapshot}
        assert by_name["steps"]["value"] == 2
        assert by_name["lat"]["labels"] == {"policy": "rr"}

    def test_prometheus_text(self):
        registry = MetricsRegistry()
        registry.counter("kernel.steps").inc(3)
        registry.gauge("kernel.steps-per-second").set(1.5)
        h = registry.histogram("kernel.query_seconds", policy="rr")
        for value in [0.1, 0.2, 0.3]:
            h.observe(value)
        text = registry.to_text(prefix="repro")
        assert "# TYPE repro_kernel_steps counter" in text
        assert "repro_kernel_steps 3" in text
        assert "repro_kernel_steps_per_second 1.5" in text
        assert "# TYPE repro_kernel_query_seconds summary" in text
        assert (
            'repro_kernel_query_seconds{policy="rr",quantile="0.5"} 0.2'
            in text
        )
        assert 'repro_kernel_query_seconds_count{policy="rr"} 3' in text
        assert text.endswith("\n")
