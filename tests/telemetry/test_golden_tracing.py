"""Telemetry must never change results: golden bit-identity under tracing.

The golden store pins the exact path's SHA-256 share digests; these
tests re-run the same cases with a full tracing session installed and
assert the digests are unchanged -- instrumentation wraps the kernel,
it never touches arithmetic or control flow.
"""

import json

import pytest

from repro.algorithms import get_policy
from repro.telemetry import TelemetrySession, use_session

from ..data.make_golden import CASES, GOLDEN_PATH, share_digest

GOLDEN = json.loads(GOLDEN_PATH.read_text())
_BUILDERS = dict(CASES)


@pytest.mark.parametrize(
    "entry",
    GOLDEN["entries"],
    ids=lambda e: f"{e['case']}-{e['policy']}",
)
def test_exact_path_bit_identical_under_tracing(entry):
    instance = _BUILDERS[entry["case"]]()
    with use_session(TelemetrySession()) as session:
        schedule = get_policy(entry["policy"]).run(instance)
    assert schedule.makespan == entry["exact_makespan"]
    assert share_digest(schedule) == entry["share_sha256"]
    # And the run actually was instrumented (the test would be vacuous
    # if the session were ignored).
    assert session.metrics.counter("kernel.steps").value == schedule.makespan


def test_batch_rows_identical_under_tracing():
    """A traced campaign produces the same rows as an untraced one."""
    from repro.backends import BatchRunner, make_campaign_instances

    from ..backends.test_batch import strip_timing

    instances = make_campaign_instances(6, 3, 4, seed=11)
    plain = BatchRunner(workers=1).run(instances)
    with use_session(TelemetrySession()):
        traced = BatchRunner(workers=1).run(instances)
    assert strip_timing(plain.rows) == strip_timing(traced.rows)
