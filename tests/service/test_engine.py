"""The event-driven scheduling engine (:mod:`repro.service.engine`)."""

import pytest

from repro.core import Job
from repro.exceptions import ServiceError
from repro.service import (
    ArrivalEvent,
    PoissonStream,
    SchedulingService,
    UtilizationCap,
    replay_log,
)
from repro.telemetry import TelemetrySession, use_session

BACKENDS = ("exact", "vector")


def _stream(count=30, rate=2.0, seed=5):
    return PoissonStream(rate=rate, count=count, seed=seed)


class TestBasicLifecycle:
    def test_submit_drain_report(self):
        svc = SchedulingService(max_queues=2)
        assert svc.submit(ArrivalEvent(0, Job("1/2")))
        assert svc.submit(ArrivalEvent(1, Job("3/4")))
        makespan = svc.drain()
        assert makespan >= 1
        report = svc.report()
        assert report.submitted == 2
        assert report.admitted == 2
        assert report.completed == 2
        assert report.dropped_events == 0
        assert svc.closed

    def test_empty_service_drains_to_zero(self):
        svc = SchedulingService()
        assert svc.drain() == 0
        assert svc.report().completed == 0

    def test_submit_after_drain_rejected(self):
        svc = SchedulingService()
        svc.drain()
        with pytest.raises(ServiceError, match="closed"):
            svc.submit(ArrivalEvent(0, Job("1/2")))

    def test_double_drain_rejected(self):
        svc = SchedulingService()
        svc.drain()
        with pytest.raises(ServiceError, match="closed"):
            svc.drain()

    def test_clock_never_rewinds(self):
        svc = SchedulingService()
        svc.submit(ArrivalEvent(5, Job("1/2")))
        with pytest.raises(ServiceError, match="in order"):
            svc.submit(ArrivalEvent(3, Job("1/2")))

    def test_unknown_backend_rejected(self):
        with pytest.raises(ServiceError, match="backend"):
            SchedulingService(backend="quantum")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ServiceError, match="mode"):
            SchedulingService(mode="psychic")

    def test_bad_max_queues_rejected(self):
        with pytest.raises(ServiceError, match="max_queues"):
            SchedulingService(max_queues=0)


class TestPlacement:
    def test_grows_queues_up_to_the_cap(self):
        svc = SchedulingService(max_queues=3)
        for step in range(3):
            svc.submit(ArrivalEvent(step, Job("1/2", 50)))
        assert svc.report().num_queues == 3

    def test_then_places_on_the_least_loaded_queue(self):
        svc = SchedulingService(max_queues=2)
        svc.submit(ArrivalEvent(0, Job("1/2", 100)))  # heavy queue 0
        svc.submit(ArrivalEvent(0, Job("1/2")))  # opens queue 1
        svc.submit(ArrivalEvent(0, Job("1/2")))  # lighter queue 1 wins
        log = [r for r in svc.event_log if r["type"] == "arrival"]
        assert [r["queue"] for r in log] == [0, 1, 1]

    def test_idle_gap_fast_forwards(self):
        svc = SchedulingService()
        svc.submit(ArrivalEvent(0, Job("1/2")))
        # The queue drains after a couple of steps; the next arrival
        # far in the future must advance the clock without issue.
        assert svc.submit(ArrivalEvent(500, Job("1/2")))
        assert svc.clock == 500
        svc.drain()
        assert svc.report().completed == 2


class TestIncrementalEqualsFromScratch:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_bit_identical_completions(self, backend):
        count = 12 if backend == "exact" else 30
        results = {}
        for mode in ("incremental", "from-scratch"):
            svc = SchedulingService(
                backend=backend, mode=mode, max_queues=4
            )
            svc.run_stream(_stream(count=count))
            results[mode] = svc.completion_steps
        assert results["incremental"] == results["from-scratch"]

    def test_identical_event_logs(self):
        logs = {}
        for mode in ("incremental", "from-scratch"):
            svc = SchedulingService(mode=mode, max_queues=4)
            svc.run_stream(_stream())
            logs[mode] = svc.event_log
        assert logs["incremental"] == logs["from-scratch"]


class TestAdmissionIntegration:
    def test_utilization_cap_sheds_bursts(self):
        svc = SchedulingService(
            admission=UtilizationCap(cap=0.5, window=4), max_queues=2
        )
        decisions = [
            svc.submit(ArrivalEvent(0, Job("1/2", 2))) for _ in range(5)
        ]
        assert True in decisions and False in decisions
        report = svc.report()
        assert report.admitted + report.rejected == report.submitted == 5

    def test_deadline_feasibility_rejects_late_jobs(self):
        svc = SchedulingService(
            admission="deadline-feasibility", max_queues=1
        )
        assert svc.submit(ArrivalEvent(0, Job("1/2", 10, deadline=30)))
        assert not svc.submit(ArrivalEvent(0, Job("1/2", deadline=2)))

    def test_rejected_jobs_never_enter_the_instance(self):
        svc = SchedulingService(
            admission=UtilizationCap(cap=0.5, window=2), max_queues=1
        )
        svc.submit(ArrivalEvent(0, Job("1/2", 2)))
        assert not svc.submit(ArrivalEvent(0, Job("1/2", 2)))
        svc.drain()
        assert svc.report().completed == 1


class TestReport:
    def test_utilization_is_a_fraction(self):
        svc = SchedulingService(max_queues=4)
        svc.run_stream(_stream())
        report = svc.report()
        assert 0.0 <= report.utilization <= 1.0
        assert report.total_work > 0

    def test_latency_percentiles_are_ordered(self):
        svc = SchedulingService(max_queues=4)
        svc.run_stream(_stream())
        lat = svc.report().latency_percentiles
        assert set(lat) == {"p50", "p90", "p99", "mean", "max"}
        assert 0.0 <= lat["p50"] <= lat["p90"] <= lat["p99"] <= lat["max"]

    def test_to_dict_round_trips_through_json(self):
        import json

        svc = SchedulingService()
        svc.run_stream(_stream(count=5))
        doc = svc.report().to_dict()
        assert json.loads(json.dumps(doc)) == doc

    def test_render_mentions_the_headline_figures(self):
        svc = SchedulingService()
        svc.run_stream(_stream(count=5))
        text = svc.report().render()
        assert "utilization=" in text
        assert "p99=" in text


class TestEventLog:
    def test_log_structure(self):
        svc = SchedulingService(max_queues=2)
        svc.run_stream(_stream(count=8))
        log = svc.event_log
        kinds = [r["type"] for r in log]
        assert kinds[-1] == "drain"
        arrivals = [r for r in log if r["type"] == "arrival"]
        completions = [r for r in log if r["type"] == "completion"]
        assert len(arrivals) == 8
        assert len(completions) == 8
        assert [r["seq"] for r in arrivals] == list(range(8))

    def test_config_is_replayable(self):
        svc = SchedulingService(
            admission=UtilizationCap(cap=0.7, window=16), max_queues=3
        )
        config = svc.config()
        assert config["admission"] == {
            "name": "utilization-cap",
            "options": {"cap": 0.7, "window": 16},
        }


class TestReplay:
    def test_replay_reproduces_the_run(self):
        svc = SchedulingService(
            admission=UtilizationCap(cap=0.9, window=8), max_queues=4
        )
        original = svc.run_stream(_stream(count=20))
        report, replayed = replay_log(svc.config(), svc.event_log)
        assert report.admitted == original.admitted
        assert report.rejected == original.rejected
        assert report.completed == original.completed
        assert replayed.completion_steps == svc.completion_steps

    def test_diverging_decision_rejected(self):
        svc = SchedulingService(max_queues=2)
        svc.run_stream(_stream(count=5))
        records = svc.event_log
        tampered = [
            {**r, "admitted": False} if r["type"] == "arrival" else r
            for r in records
        ]
        with pytest.raises(ServiceError, match="diverged"):
            replay_log(svc.config(), tampered)

    def test_malformed_config_rejected(self):
        with pytest.raises(ServiceError, match="malformed event-log config"):
            replay_log({}, [])

    def test_malformed_arrival_record_rejected(self):
        config = SchedulingService().config()
        with pytest.raises(ServiceError, match="malformed arrival"):
            replay_log(config, [{"type": "arrival", "t": 0}])


class TestTelemetry:
    def test_service_metrics_are_recorded(self):
        session = TelemetrySession(tracing=False)
        with use_session(session):
            svc = SchedulingService(max_queues=4)
            svc.run_stream(_stream(count=10))
        metrics = session.metrics
        assert metrics.counter("service.arrivals").value == 10
        assert metrics.counter("service.admitted").value == 10
        assert metrics.counter("service.completions").value == 10

    def test_stream_span_is_traced(self):
        session = TelemetrySession()
        with use_session(session):
            SchedulingService().run_stream(_stream(count=5))
        names = [r.name for r in session.tracer.records]
        assert "service.stream" in names
