"""Tests for the always-on scheduling service (:mod:`repro.service`)."""
