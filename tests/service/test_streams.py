"""Arrival streams (:mod:`repro.service.streams`)."""

import pytest

from repro.core import Job
from repro.exceptions import ServiceError
from repro.service import ArrivalEvent, PoissonStream, TraceStream


class TestTraceStream:
    def test_replays_events_in_order(self):
        events = [ArrivalEvent(0, Job("1/2")), ArrivalEvent(2, Job("3/4"))]
        stream = TraceStream(events)
        assert list(stream) == events
        assert len(stream) == 2

    def test_is_reiterable(self):
        stream = TraceStream([ArrivalEvent(1, Job("1/2"))])
        assert list(stream) == list(stream)

    def test_out_of_order_rejected(self):
        events = [ArrivalEvent(3, Job("1/2")), ArrivalEvent(1, Job("1/2"))]
        with pytest.raises(ServiceError, match="non-decreasing"):
            TraceStream(events)

    def test_from_lines_parses_the_trace_format(self):
        stream = TraceStream.from_lines(
            ['{"t": 0, "job": {"r": "1/2", "p": 1}}']
        )
        assert len(stream) == 1


class TestPoissonStream:
    def test_same_seed_same_events(self):
        a = list(PoissonStream(rate=2.0, count=25, seed=7))
        b = list(PoissonStream(rate=2.0, count=25, seed=7))
        assert a == b

    def test_different_seeds_differ(self):
        a = list(PoissonStream(rate=2.0, count=25, seed=7))
        b = list(PoissonStream(rate=2.0, count=25, seed=8))
        assert a != b

    def test_is_reiterable(self):
        stream = PoissonStream(rate=1.0, count=10, seed=0)
        assert list(stream) == list(stream)
        assert len(stream) == 10

    def test_times_are_non_decreasing(self):
        events = list(PoissonStream(rate=3.0, count=50, seed=1))
        times = [e.time for e in events]
        assert times == sorted(times)
        assert all(t >= 0 for t in times)

    def test_requirements_respect_the_grid(self):
        stream = PoissonStream(
            rate=1.0, count=30, seed=2, grid=10, low=2, high=5
        )
        for event in stream:
            numerator = event.job.requirement * 10
            assert 2 <= numerator <= 5

    def test_invalid_rate_rejected(self):
        with pytest.raises(ServiceError, match="rate"):
            PoissonStream(rate=0.0, count=1)

    def test_invalid_count_rejected(self):
        with pytest.raises(ServiceError, match="count"):
            PoissonStream(rate=1.0, count=-1)

    def test_invalid_grid_range_rejected(self):
        with pytest.raises(ServiceError, match="grid"):
            PoissonStream(rate=1.0, count=1, low=8, high=4)
