"""Soak smoke: sustained Poisson streaming with a clean shutdown.

The CI service job runs this with ``CRSHARING_SOAK_SECONDS=30`` (the
30-second soak); the tier-1 default keeps it to a couple of seconds so
the ordinary test run stays fast.  Either way the invariants are the
same: every submitted event is accounted for (zero dropped events),
every admitted job completes, and the service shuts down cleanly.
"""

import os
import time

from repro.service import PoissonStream, SchedulingService

#: Wall-clock budget for the soak loop (seconds).
SOAK_SECONDS = float(os.environ.get("CRSHARING_SOAK_SECONDS", "2"))


def test_soak_streaming_sessions():
    """Run streaming sessions until the time budget is exhausted."""
    deadline = time.monotonic() + SOAK_SECONDS
    sessions = 0
    while True:
        svc = SchedulingService(
            max_queues=8, admission="utilization-cap"
        )
        report = svc.run_stream(
            PoissonStream(rate=3.0, count=100, seed=sessions)
        )
        assert report.dropped_events == 0
        assert report.submitted == 100
        assert report.admitted + report.rejected == 100
        assert report.completed == report.admitted
        assert svc.closed
        sessions += 1
        if time.monotonic() >= deadline:
            break
    assert sessions >= 1
