"""Trace and event-log wire formats (:mod:`repro.service.events`)."""

import json

import pytest

from repro.core import Job
from repro.exceptions import ServiceError
from repro.service import (
    ArrivalEvent,
    read_event_log,
    read_trace,
    write_event_log,
    write_trace,
)


class TestArrivalEvent:
    def test_round_trip(self):
        event = ArrivalEvent(3, Job("3/4", 2, weight=5, deadline=9))
        again = ArrivalEvent.from_dict(event.to_dict())
        assert again == event

    def test_dict_form_is_json_serializable(self):
        doc = ArrivalEvent(0, Job("1/2")).to_dict()
        assert json.loads(json.dumps(doc)) == doc

    def test_non_object_rejected(self):
        with pytest.raises(ServiceError, match="must be an object"):
            ArrivalEvent.from_dict([1, 2])

    def test_missing_time_rejected(self):
        with pytest.raises(ServiceError, match="no valid 't'"):
            ArrivalEvent.from_dict({"job": {"r": "1/2", "p": 1}})

    def test_negative_time_rejected(self):
        with pytest.raises(ServiceError, match=">= 0"):
            ArrivalEvent.from_dict({"t": -1, "job": {"r": "1/2", "p": 1}})

    def test_missing_job_rejected(self):
        with pytest.raises(ServiceError, match="no 'job'"):
            ArrivalEvent.from_dict({"t": 0})

    def test_bad_job_rejected(self):
        with pytest.raises(ServiceError, match="bad job"):
            ArrivalEvent.from_dict({"t": 0, "job": {"p": 1}})


class TestTraceFormat:
    def test_write_read_round_trip(self, tmp_path):
        events = [
            ArrivalEvent(0, Job("1/2")),
            ArrivalEvent(0, Job("3/4", 2)),
            ArrivalEvent(5, Job("1/4", deadline=20)),
        ]
        path = tmp_path / "trace.jsonl"
        assert write_trace(events, path) == 3
        assert read_trace(path) == events

    def test_reads_in_memory_lines(self):
        lines = ['{"t": 0, "job": {"r": "1/2", "p": 1}}', "", "  "]
        events = read_trace(lines)
        assert len(events) == 1
        assert events[0].time == 0

    def test_out_of_order_rejected(self):
        lines = [
            '{"t": 4, "job": {"r": "1/2", "p": 1}}',
            '{"t": 2, "job": {"r": "1/2", "p": 1}}',
        ]
        with pytest.raises(ServiceError, match="non-decreasing"):
            read_trace(lines)

    def test_unparseable_line_names_the_line(self):
        with pytest.raises(ServiceError, match="line 2"):
            read_trace(['{"t": 0, "job": {"r": "1/2", "p": 1}}', "{oops"])


class TestEventLogFormat:
    def test_write_read_round_trip(self, tmp_path):
        config = {"policy": "greedy-balance", "max_queues": 4}
        records = [
            {"type": "arrival", "seq": 0, "t": 0, "admitted": True},
            {"type": "drain", "t": 7},
        ]
        path = tmp_path / "events.jsonl"
        assert write_event_log(config, records, path) == 3
        got_config, got_records = read_event_log(path)
        assert got_config == config
        assert got_records == records

    def test_missing_header_rejected(self):
        with pytest.raises(ServiceError, match="header"):
            read_event_log(['{"type": "drain", "t": 0}'])

    def test_version_skew_rejected(self):
        line = json.dumps(
            {"format": "crsharing-events", "version": 99, "config": {}}
        )
        with pytest.raises(ServiceError, match="version"):
            read_event_log([line])

    def test_header_without_config_rejected(self):
        line = json.dumps({"format": "crsharing-events", "version": 1})
        with pytest.raises(ServiceError, match="no config"):
            read_event_log([line])

    def test_record_without_type_rejected(self):
        header = json.dumps(
            {"format": "crsharing-events", "version": 1, "config": {}}
        )
        with pytest.raises(ServiceError, match="no 'type'"):
            read_event_log([header, '{"t": 3}'])

    def test_empty_log_rejected(self):
        with pytest.raises(ServiceError, match="empty event log"):
            read_event_log([])
