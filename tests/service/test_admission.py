"""Admission control policies (:mod:`repro.service.admission`)."""

import pytest

from repro.core import Job
from repro.exceptions import ServiceError
from repro.service import (
    AcceptAll,
    AdmissionContext,
    DeadlineFeasibility,
    UtilizationCap,
    available_admission,
    get_admission,
)


def _ctx(job=None, *, time=0, queue_backlog=0.0, total_backlog=0.0):
    return AdmissionContext(
        time=time,
        job=job if job is not None else Job("1/2"),
        queue_index=0,
        queue_backlog=queue_backlog,
        total_backlog=total_backlog,
        num_processors=4,
    )


class TestRegistry:
    def test_all_policies_listed(self):
        assert available_admission() == [
            "accept-all",
            "deadline-feasibility",
            "utilization-cap",
        ]

    def test_resolves_by_name_with_options(self):
        policy = get_admission("utilization-cap", cap=0.5, window=10)
        assert policy.cap == 0.5
        assert policy.window == 10

    def test_passes_objects_through(self):
        policy = AcceptAll()
        assert get_admission(policy) is policy

    def test_unknown_name_rejected(self):
        with pytest.raises(ServiceError, match="unknown admission"):
            get_admission("no-such-policy")

    def test_options_with_object_rejected(self):
        with pytest.raises(ServiceError, match="registry name"):
            get_admission(AcceptAll(), cap=0.5)

    def test_bad_options_rejected(self):
        with pytest.raises(ServiceError, match="bad options"):
            get_admission("accept-all", cap=0.5)


class TestAcceptAll:
    def test_admits_everything(self):
        policy = AcceptAll()
        assert policy.admit(_ctx(total_backlog=1e9))
        assert policy.describe() == "accept-all"
        assert policy.options() == {}


class TestUtilizationCap:
    def test_admits_within_the_window(self):
        policy = UtilizationCap(cap=0.5, window=10)
        assert policy.admit(_ctx(Job("1/2"), total_backlog=4.0))

    def test_rejects_beyond_the_window(self):
        policy = UtilizationCap(cap=0.5, window=10)
        assert not policy.admit(_ctx(Job("1/2"), total_backlog=4.9))

    def test_boundary_is_inclusive(self):
        policy = UtilizationCap(cap=0.5, window=10)
        assert policy.admit(_ctx(Job("1/2"), total_backlog=4.5))

    def test_describe_and_options_carry_parameters(self):
        policy = UtilizationCap(cap=0.8, window=32)
        assert "cap=0.8" in policy.describe()
        assert policy.options() == {"cap": 0.8, "window": 32}

    def test_invalid_cap_rejected(self):
        with pytest.raises(ServiceError, match="cap"):
            UtilizationCap(cap=1.5)

    def test_invalid_window_rejected(self):
        with pytest.raises(ServiceError, match="window"):
            UtilizationCap(window=0)


class TestDeadlineFeasibility:
    def test_jobs_without_deadline_always_admitted(self):
        policy = DeadlineFeasibility()
        assert policy.admit(_ctx(Job("1/2"), queue_backlog=1e9))

    def test_feasible_deadline_admitted(self):
        # 1 full-speed step of own work + backlog 3 from time 2 = 6.
        policy = DeadlineFeasibility()
        ctx = _ctx(
            Job("1/2", deadline=6), time=2, queue_backlog=3.0
        )
        assert policy.admit(ctx)

    def test_infeasible_deadline_rejected(self):
        policy = DeadlineFeasibility()
        ctx = _ctx(
            Job("1/2", deadline=5), time=2, queue_backlog=3.0
        )
        assert not policy.admit(ctx)
