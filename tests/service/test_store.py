"""Content-addressed result store (:mod:`repro.service.store`)."""

import json

import pytest

from repro.backends.batch import BatchRunner
from repro.exceptions import ServiceError
from repro.generators import bag_instance
from repro.service import ResultStore, instance_digest, run_cached_campaign
from repro.telemetry import TelemetrySession, use_session


def _instances(n=4):
    return [bag_instance(2, 3, seed=s) for s in range(n)]


class TestInstanceDigest:
    def test_digest_is_stable(self):
        inst = bag_instance(2, 3, seed=0)
        assert instance_digest(inst) == instance_digest(inst)

    def test_different_instances_digest_differently(self):
        a, b = _instances(2)
        assert instance_digest(a) != instance_digest(b)

    def test_order_changes_the_digest(self):
        inst = bag_instance(2, 3, seed=0)
        queues = [list(q) for q in inst.queues]
        queues[0].reverse()
        assert instance_digest(inst) != instance_digest(
            inst.with_queues(queues)
        )


class TestResultStore:
    def test_address_depends_on_every_key_part(self):
        base = ResultStore.address("d", "greedy-balance", ("makespan",))
        assert base != ResultStore.address("e", "greedy-balance", ("makespan",))
        assert base != ResultStore.address("d", "round-robin", ("makespan",))
        assert base != ResultStore.address("d", "greedy-balance", ())
        assert base != ResultStore.address(
            "d", "greedy-balance", ("makespan",), backend="exact"
        )

    def test_objective_order_does_not_matter(self):
        a = ResultStore.address("d", "p", ("makespan", "tardiness"))
        b = ResultStore.address("d", "p", ("tardiness", "makespan"))
        assert a == b

    def test_put_get_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        address = ResultStore.address("d", "p")
        assert store.get(address) is None
        store.put(address, {"makespan": 7})
        assert store.get(address) == {"makespan": 7}
        assert store.hits == 1
        assert store.misses == 1
        assert len(store) == 1

    def test_corrupt_entry_rejected(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        address = ResultStore.address("d", "p")
        store.put(address, {"makespan": 7})
        path = store._path(address)
        path.write_text("{not json")
        with pytest.raises(ServiceError, match="corrupted"):
            store.get(address)

    def test_unrecognized_entry_rejected(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        address = ResultStore.address("d", "p")
        store.put(address, {"makespan": 7})
        store._path(address).write_text(json.dumps({"format": "other"}))
        with pytest.raises(ServiceError, match="unrecognized"):
            store.get(address)

    def test_empty_store_has_no_entries(self, tmp_path):
        assert len(ResultStore(tmp_path / "missing")) == 0


class TestCachedCampaign:
    def test_second_run_is_all_hits_with_identical_rows(self, tmp_path):
        instances = _instances()
        runner = BatchRunner(
            "greedy-balance", "vector", workers=1, objectives=("makespan",)
        )
        store = ResultStore(tmp_path / "cache")
        first = run_cached_campaign(instances, runner, store)
        assert store.misses == len(instances)
        assert store.hits == 0
        second = run_cached_campaign(instances, runner, store)
        assert store.hits == len(instances)
        assert second == first

    def test_partial_overlap_only_runs_the_misses(self, tmp_path):
        instances = _instances(3)
        runner = BatchRunner(
            "greedy-balance", "vector", workers=1, objectives=("makespan",)
        )
        store = ResultStore(tmp_path / "cache")
        run_cached_campaign(instances[:2], runner, store)
        store.hits = store.misses = 0
        rows = run_cached_campaign(instances, runner, store)
        assert store.hits == 2
        assert store.misses == 1
        assert len(rows) == 3

    def test_telemetry_counters_fill(self, tmp_path):
        instances = _instances(2)
        runner = BatchRunner(
            "greedy-balance", "vector", workers=1, objectives=("makespan",)
        )
        store = ResultStore(tmp_path / "cache")
        session = TelemetrySession(tracing=False)
        with use_session(session):
            run_cached_campaign(instances, runner, store)
            run_cached_campaign(instances, runner, store)
        assert session.metrics.counter("store.misses").value == 2
        assert session.metrics.counter("store.hits").value == 2
