"""Documented examples cannot rot: doctests over README and docs/.

Every ``>>>`` example in README.md and ``docs/*.md`` is executed here
(and therefore in CI and the tier-1 suite).  A failing example means
the documentation no longer matches the code -- fix whichever one is
wrong.

Selected library modules whose docstrings carry examples are run
through ``doctest.testmod`` as well, so the API reference stays
truthful too.
"""

import doctest
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

MARKDOWN_FILES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")]
)

#: Modules whose docstring examples are part of the public API docs.
DOCTEST_MODULES = [
    "repro.core.instance",
    "repro.core.job",
    "repro.core.kernel",
    "repro.core.checkpoint",
    "repro.algorithms.base",
    "repro.algorithms.round_robin",
    "repro.algorithms.greedy_balance",
    "repro.algorithms.heuristics",
    "repro.algorithms.flowdeadline",
    "repro.backends.base",
    "repro.backends.batched",
    "repro.kernels",
    "repro.kernels.dispatch",
    "repro.objectives.base",
    "repro.objectives.makespan",
    "repro.objectives.flow",
    "repro.objectives.tardiness",
    "repro.generators.random_instances",
    "repro.service.engine",
]


@pytest.mark.parametrize("path", MARKDOWN_FILES, ids=lambda p: p.name)
def test_markdown_examples_execute(path):
    assert path.exists(), path
    result = doctest.testfile(
        str(path),
        module_relative=False,
        optionflags=doctest.NORMALIZE_WHITESPACE,
    )
    assert result.attempted > 0, f"{path.name} has no >>> examples"
    assert result.failed == 0, f"{result.failed} failing example(s) in {path.name}"


def test_docs_tree_exists():
    docs = REPO_ROOT / "docs"
    assert (docs / "MODEL.md").exists()
    assert (docs / "ARCHITECTURE.md").exists()


@pytest.mark.parametrize("module_name", DOCTEST_MODULES)
def test_module_docstring_examples(module_name):
    module = __import__(module_name, fromlist=["_"])
    result = doctest.testmod(
        module, optionflags=doctest.NORMALIZE_WHITESPACE
    )
    assert result.failed == 0, f"{result.failed} failing example(s) in {module_name}"
