"""Docstring coverage gate for the documented-API directories.

CI runs ruff's pydocstyle (``D``) rules over ``src/repro/core``,
``src/repro/backends``, ``src/repro/kernels``,
``src/repro/objectives``, ``src/repro/sequencing``,
``src/repro/service`` and ``src/repro/telemetry`` (see
``[tool.ruff]`` in pyproject.toml); this AST-based check enforces the
presence half of those rules inside the tier-1 suite as well, so a
missing public docstring fails fast even where ruff is not installed.
"""

import ast
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

CHECKED_DIRS = (
    "core",
    "backends",
    "kernels",
    "objectives",
    "sequencing",
    "service",
    "telemetry",
)


def _public_functions(tree):
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if node.name.startswith("_"):
                continue
            yield node


def _checked_files():
    for directory in CHECKED_DIRS:
        yield from sorted((SRC / directory).glob("*.py"))


@pytest.mark.parametrize("path", list(_checked_files()), ids=lambda p: p.name)
def test_public_symbols_have_docstrings(path):
    tree = ast.parse(path.read_text())
    missing = []
    if ast.get_docstring(tree) is None:
        missing.append(f"module {path.name}")
    for node in _public_functions(tree):
        if ast.get_docstring(node) is None:
            missing.append(f"{type(node).__name__} {node.name} (line {node.lineno})")
    assert not missing, f"{path}: missing docstrings: {missing}"


def test_one_line_summaries_end_like_sentences():
    """The summary line of every public core/backends docstring is
    non-empty (a one-line summary, per the docstring pass)."""
    offenders = []
    for path in _checked_files():
        tree = ast.parse(path.read_text())
        for node in _public_functions(tree):
            doc = ast.get_docstring(node)
            if doc is None:
                continue
            first = doc.strip().splitlines()[0].strip()
            if not first:
                offenders.append(f"{path.name}:{node.name}")
    assert not offenders, offenders
