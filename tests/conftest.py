"""Shared fixtures and hypothesis strategies for the test-suite."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import strategies as st

from repro.core import Instance


@pytest.fixture
def two_proc_instance() -> Instance:
    """A small fixed m=2 instance used across suites."""
    return Instance.from_requirements(
        [["0.9", "0.1", "0.8", "0.2"], ["0.5", "0.5", "0.5", "0.5"]]
    )


@pytest.fixture
def three_proc_instance() -> Instance:
    """A small fixed m=3 instance."""
    return Instance.from_percent([[60, 40], [30, 90], [80, 10]])


# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------
def requirements(grid: int = 20, min_value: int = 1) -> st.SearchStrategy[Fraction]:
    """Exact rational requirements on a small grid (fast Fractions)."""
    return st.integers(min_value=min_value, max_value=grid).map(
        lambda k: Fraction(k, grid)
    )


def unit_instances(
    max_m: int = 3, max_n: int = 4, grid: int = 20
) -> st.SearchStrategy[Instance]:
    """Random small unit-size instances (possibly ragged queues)."""
    return st.integers(1, max_m).flatmap(
        lambda m: st.lists(
            st.lists(requirements(grid), min_size=1, max_size=max_n),
            min_size=m,
            max_size=m,
        ).map(Instance.from_requirements)
    )


def tiny_instances_for_exact(grid: int = 10) -> st.SearchStrategy[Instance]:
    """Instances small enough for the brute-force oracle."""
    return unit_instances(max_m=3, max_n=3, grid=grid)
