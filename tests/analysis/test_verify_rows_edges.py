"""Epsilon edge cases of the tolerant share-row verifier.

``verify_share_rows`` is the independent auditor for float backends;
its tolerance handling must be exact at the boundaries: a row summing
to exactly capacity 1 is legal, overshoot within ``atol`` is absorbed,
overshoot beyond ``atol`` is reported -- for flat single-resource rows
and per-resource rows of share matrices alike.
"""

from repro.analysis import verify_share_rows
from repro.core import Instance, Job

ATOL = 1e-9


def flat_instance() -> Instance:
    return Instance.from_requirements([["1/2"], ["1/2"]])


class TestExactCapacityRows:
    def test_row_summing_to_exactly_one_is_legal(self):
        report = verify_share_rows(flat_instance(), [[0.5, 0.5]], atol=ATOL)
        assert report.ok, report.problems

    def test_single_share_of_exactly_one(self):
        inst = Instance.from_requirements([[1]])
        report = verify_share_rows(inst, [[1.0]], atol=ATOL)
        assert report.ok, report.problems

    def test_overshoot_within_atol_absorbed(self):
        rows = [[0.5, 0.5 + ATOL / 2]]
        report = verify_share_rows(flat_instance(), rows, atol=ATOL)
        assert report.ok, report.problems

    def test_overshoot_beyond_atol_reported(self):
        rows = [[0.5, 0.5 + 10 * ATOL]]
        report = verify_share_rows(flat_instance(), rows, atol=ATOL)
        assert not report.ok
        assert any("overused" in p for p in report.problems)

    def test_negative_share_within_atol_absorbed(self):
        rows = [[-ATOL / 2, 0.5], [0.5, 0.5]]
        report = verify_share_rows(flat_instance(), rows, atol=ATOL)
        assert report.ok, report.problems

    def test_negative_share_beyond_atol_reported(self):
        rows = [[-10 * ATOL, 0.5]]
        report = verify_share_rows(flat_instance(), rows, atol=ATOL)
        assert not report.ok
        assert any("out of [0,1]" in p for p in report.problems)

    def test_share_above_one_beyond_atol_reported(self):
        inst = Instance.from_requirements([[1]])
        report = verify_share_rows(inst, [[1.0 + 10 * ATOL]], atol=ATOL)
        assert not report.ok

    def test_completion_within_atol(self):
        # Work left is ATOL/2 after the recorded rows: counts as done.
        inst = Instance.from_requirements([["1/2"]])
        report = verify_share_rows(inst, [[0.5 - ATOL / 2]], atol=ATOL)
        assert report.ok, report.problems
        assert report.completion_steps == {(0, 0): 0}

    def test_unfinished_beyond_atol_reported(self):
        inst = Instance.from_requirements([["1/2"]])
        report = verify_share_rows(inst, [[0.5 - 10 * ATOL]], atol=ATOL)
        assert not report.ok
        assert any("unfinished" in p for p in report.problems)


class TestMatrixCapacityRows:
    def matrix_instance(self) -> Instance:
        return Instance(
            [[Job(["1/2", "1/4"])], [Job(["1/2", "3/4"])]]
        )

    def test_each_resource_row_at_exact_capacity(self):
        rows = [[[0.5, 0.5], [0.25, 0.75]]]
        report = verify_share_rows(self.matrix_instance(), rows, atol=ATOL)
        assert report.ok, report.problems
        assert report.completion_steps == {(0, 0): 0, (1, 0): 0}

    def test_one_resource_overused_is_reported(self):
        rows = [
            [[0.5, 0.5], [0.25 + 10 * ATOL, 0.75]],
            [[0.0, 0.0], [0.0, 0.0]],
        ]
        report = verify_share_rows(self.matrix_instance(), rows, atol=ATOL)
        assert not report.ok
        assert any("resource 1" in p for p in report.problems)

    def test_bottleneck_rule_applied(self):
        # Starve resource 1 of processor 1: half its requirement means
        # half speed, so one step is not enough to finish p1's job.
        rows = [
            [[0.5, 0.5], [0.25, 0.375]],
            [[0.0, 0.25], [0.0, 0.375]],
        ]
        report = verify_share_rows(self.matrix_instance(), rows, atol=ATOL)
        assert report.ok, report.problems
        assert report.completion_steps[(0, 0)] == 0
        assert report.completion_steps[(1, 0)] == 1

    def test_wrong_row_count_reported(self):
        report = verify_share_rows(
            self.matrix_instance(), [[[0.5, 0.5]]], atol=ATOL
        )
        assert not report.ok
        assert any("expected one per resource" in p for p in report.problems)
