"""Failure injection: the verifiers must catch corrupted schedules.

Green verifiers are only trustworthy if they can turn red.  These tests
mutate valid schedules/data in targeted ways and assert the validation
layers (Schedule construction, verify_schedule, the property checkers,
FluidSchedule.validate) detect each corruption.
"""

from fractions import Fraction

import pytest

from repro.algorithms import GreedyBalance
from repro.analysis import verify_schedule
from repro.core import Instance, Schedule, continuous_greedy_balance
from repro.core.continuous import FluidPiece, FluidSchedule
from repro.exceptions import InvalidScheduleError
from repro.generators import uniform_instance
from repro.io import schedule_from_dict, schedule_to_dict


@pytest.fixture
def instance() -> Instance:
    return uniform_instance(3, 3, seed=7)


@pytest.fixture
def schedule(instance) -> Schedule:
    return GreedyBalance().run(instance)


class TestScheduleCorruption:
    def test_dropped_final_step_detected(self, instance, schedule):
        rows = schedule.share_rows()[:-1]
        with pytest.raises(InvalidScheduleError, match="unfinished"):
            Schedule(instance, rows)

    def test_inflated_share_detected(self, instance, schedule):
        rows = schedule.share_rows()
        rows[0] = [Fraction(1)] * 3  # sum 3 > 1
        with pytest.raises(InvalidScheduleError, match="overused"):
            Schedule(instance, rows)

    def test_negative_share_detected(self, instance, schedule):
        rows = schedule.share_rows()
        rows[0][0] = Fraction(-1, 10)
        with pytest.raises(InvalidScheduleError, match="outside"):
            Schedule(instance, rows)

    def test_json_tampering_detected(self, schedule):
        data = schedule_to_dict(schedule)
        data["shares"] = data["shares"][:-1]
        with pytest.raises(InvalidScheduleError):
            schedule_from_dict(data)

    def test_verify_schedule_flags_unvalidated_corruption(self, instance, schedule):
        rows = schedule.share_rows()[:-1]
        broken = Schedule(instance, rows, validate=False)
        report = verify_schedule(broken)
        assert not report.ok


class TestFluidCorruption:
    @pytest.fixture
    def fluid(self, instance) -> FluidSchedule:
        return continuous_greedy_balance(instance)

    def test_gap_between_pieces_detected(self, fluid):
        pieces = list(fluid.pieces)
        p = pieces[-1]
        pieces[-1] = FluidPiece(p.start + Fraction(1, 100), p.end, p.rates)
        broken = FluidSchedule(fluid.instance, pieces, fluid.completion_times)
        with pytest.raises(AssertionError, match="contiguous"):
            broken.validate()

    def test_overloaded_piece_detected(self, fluid):
        pieces = list(fluid.pieces)
        p = pieces[0]
        rates = tuple(r + Fraction(1, 2) for r in p.rates)
        pieces[0] = FluidPiece(p.start, p.end, rates)
        broken = FluidSchedule(fluid.instance, pieces, fluid.completion_times)
        with pytest.raises(AssertionError):
            broken.validate()

    def test_truncated_fluid_detected(self, fluid):
        broken = FluidSchedule(
            fluid.instance, list(fluid.pieces[:-1]), fluid.completion_times
        )
        with pytest.raises(AssertionError):
            broken.validate()


class TestPropertyCheckersCatchMutations:
    def test_wasting_mutation_detected(self, instance, schedule):
        from repro.core.properties import is_non_wasting

        assert is_non_wasting(schedule)
        rows = schedule.share_rows()
        # Halve every share of the first step and park the rest of the
        # work in an appended step: feasible, but step 0 now wastes.
        rows[0] = [x / 2 for x in rows[0]]
        rows.insert(1, [x / 2 for x in schedule.share_rows()[0]])
        mutated = Schedule(instance, rows)
        assert not is_non_wasting(mutated)

    def test_balance_mutation_detected(self):
        from repro.core.properties import is_balanced

        inst = Instance.from_requirements([["1/2"], ["1/2", "1/2"]])
        balanced = GreedyBalance().run(inst)
        assert is_balanced(balanced)
        # Serve the short queue first instead.
        h = Fraction(1, 2)
        mutated = Schedule(inst, [[h, h], [0, h]])
        # p0 finishes at t=0 while p1 (2 jobs) also finishes -> fine;
        # build a real violation: p0 alone finishes at t=0.
        mutated = Schedule(inst, [[h, 0], [0, h], [0, h]])
        assert not is_balanced(mutated)
