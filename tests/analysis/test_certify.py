"""Property tests for the optimality-certification layer.

The certified optimum is only useful if it really is a floor: these
tests pit ``certify_opt`` against every registered policy x sequencer
combination (makespan objective) on seeded instances, check the
heuristic-dominance property (local search can never be further from
OPT than the fixed order it starts from), and round-trip every
certificate's witness order back through ``Instance.with_order``.
"""

import pytest

from repro.algorithms import available_policies
from repro.analysis import Certificate, certify_opt
from repro.backends import cross_validate
from repro.core import Instance
from repro.core.simulator import run_policy
from repro.exceptions import SolverError
from repro.generators import uniform_instance
from repro.sequencing import available_sequencers, get_sequencer
from repro.telemetry import TelemetrySession, use_session

SEEDS = (0, 1, 2)


def _instances():
    return [uniform_instance(2, 3, grid=10, seed=seed) for seed in SEEDS]


def _certificates():
    return [certify_opt(inst) for inst in _instances()]


class TestOptIsAFloor:
    """Certified OPT lower-bounds every policy x sequencer run."""

    @pytest.mark.parametrize("policy", available_policies())
    @pytest.mark.parametrize("sequencer", available_sequencers())
    def test_policy_x_sequencer_never_beats_opt(self, policy, sequencer):
        for inst, cert in zip(_instances(), _certificates()):
            assert cert.proved
            span = run_policy(
                inst,
                policy,
                backend="exact",
                record_shares=False,
                sequencer=sequencer,
            ).makespan
            assert span >= cert.value, (
                f"{policy} x {sequencer} ran {span} below certified "
                f"OPT {cert.value}"
            )

    def test_cross_validate_certify_asserts_the_floor(self):
        for inst in _instances():
            result = cross_validate(inst, "greedy-balance", certify=True)
            assert result.certificate.proved
            assert result.opt_gap >= 0.0
            assert result.exact_makespan >= result.certificate.value


class TestHeuristicDominance:
    """gap(LocalSearchSequencer) <= gap(FixedOrder), per instance."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_local_search_gap_at_most_fixed_gap(self, seed):
        inst = uniform_instance(2, 4, grid=10, seed=seed)
        cert = certify_opt(inst)
        assert cert.proved
        fixed_span = run_policy(
            inst,
            "greedy-balance",
            backend="vector",
            record_shares=False,
            sequencer="fixed",
        ).makespan
        ls = get_sequencer(
            "local-search", policy="greedy-balance", budget=60, seed=seed
        )
        ls_span = run_policy(
            ls.sequence(inst),
            "greedy-balance",
            backend="vector",
            record_shares=False,
        ).makespan
        assert cert.gap(ls_span) <= cert.gap(fixed_span)
        assert cert.gap(ls_span) >= 0.0


class TestCertificateRoundTrip:
    """The witness order reproduces the certified value exactly."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_witness_reaches_certified_value(self, seed):
        inst = uniform_instance(3, 2, grid=10, seed=seed)
        cert = certify_opt(inst)
        witness = cert.witness(inst)
        assert inst.same_bag(witness)
        assert witness == inst.with_order([list(r) for r in cert.order])
        from repro.algorithms import exact_order_makespan

        assert exact_order_makespan(witness) == cert.value

    def test_epsilon_witness_reaches_certified_value(self):
        inst = uniform_instance(2, 3, grid=10, seed=4)
        cert = certify_opt(inst, policy="round-robin", backend="vector")
        assert cert.mode == "epsilon"
        span = run_policy(
            cert.witness(inst),
            "round-robin",
            backend="vector",
            record_shares=False,
        ).makespan
        assert span == cert.value

    def test_optimal_sequencer_matches_certify(self):
        inst = uniform_instance(2, 3, grid=10, seed=5)
        seq = get_sequencer("optimal")
        out = seq.sequence(inst)
        cert = certify_opt(inst)
        assert seq.last_certificate.value == cert.value
        assert out == cert.witness(inst)


class TestCertificateContract:
    def test_gap_refuses_unproved(self):
        cert = Certificate(
            value=5,
            order=((0,),),
            nodes=1,
            bound_calls=0,
            proved=False,
        )
        with pytest.raises(SolverError, match="unproved"):
            cert.gap(6)

    def test_summary_is_json_friendly(self):
        import json

        cert = certify_opt(Instance([["1/2", 1], [1, "1/2"]]))
        blob = json.dumps(cert.summary())
        assert '"proved": true' in blob

    def test_lower_bound_sandwich(self):
        cert = certify_opt(uniform_instance(2, 3, grid=10, seed=6))
        assert cert.lower_bound <= cert.value
        assert cert.order_space >= cert.leaf_evaluations

    def test_telemetry_counters_and_span(self):
        session = TelemetrySession(tracing=True)
        with use_session(session):
            certify_opt(uniform_instance(2, 3, grid=10, seed=7))
        names = [record.name for record in session.tracer.records]
        assert "certify.opt" in names
        counters = {entry["name"] for entry in session.metrics.snapshot()}
        assert {
            "certify.nodes",
            "certify.pruned",
            "certify.bound_calls",
        } <= counters
