"""Unit tests for metrics, verification and ratio studies."""

from fractions import Fraction

import pytest

from repro.algorithms import GreedyBalance, RoundRobin, opt_res_assignment
from repro.analysis import (
    approximation_ratio,
    compute_metrics,
    run_ratio_study,
    verify_schedule,
)
from repro.core import Instance, Schedule
from repro.generators import round_robin_adversarial, uniform_instance


class TestMetrics:
    def test_basic_fields(self, two_proc_instance):
        sched = GreedyBalance().run(two_proc_instance)
        metrics = compute_metrics(sched)
        assert metrics.makespan == sched.makespan
        assert metrics.total_work == two_proc_instance.total_work()
        assert 0 < metrics.utilization <= 1
        assert metrics.lower_bound >= 1
        assert metrics.ratio_vs_lower_bound >= 1

    def test_perfect_schedule_ratio_one(self):
        inst = round_robin_adversarial(5)
        opt = opt_res_assignment(inst).schedule
        metrics = compute_metrics(opt)
        assert metrics.ratio_vs_lower_bound == 1  # work bound is tight

    def test_as_row_is_flat(self, two_proc_instance):
        row = compute_metrics(GreedyBalance().run(two_proc_instance)).as_row()
        assert set(row) == {
            "makespan",
            "total_work",
            "utilization",
            "waste",
            "lower_bound",
            "ratio_vs_lb",
        }

    def test_approximation_ratio(self, two_proc_instance):
        sched = GreedyBalance().run(two_proc_instance)
        assert approximation_ratio(sched, sched.makespan) == 1
        with pytest.raises(ValueError):
            approximation_ratio(sched, 0)

    def test_completion_time_objectives(self):
        from fractions import Fraction as F

        from repro.analysis import mean_completion_time, total_completion_time

        inst = Instance.from_requirements([["1/2", "1/2"], ["1/2", "1/2"]])
        # All four jobs pack two per step: completions at steps 1, 2.
        sched = Schedule(inst, [[F(1, 2), F(1, 2)], [F(1, 2), F(1, 2)]])
        assert total_completion_time(sched) == 1 + 1 + 2 + 2
        assert mean_completion_time(sched) == F(3, 2)


class TestVerification:
    def test_valid_schedule_passes(self, two_proc_instance):
        report = verify_schedule(GreedyBalance().run(two_proc_instance))
        assert report.ok
        assert not report.problems

    def test_completion_agreement(self, two_proc_instance):
        sched = RoundRobin().run(two_proc_instance)
        report = verify_schedule(sched)
        assert report.completion_steps == dict(sched.completion_steps)

    def test_incomplete_schedule_flagged(self):
        inst = Instance.from_requirements([["1/2", "1/2"]])
        sched = Schedule(inst, [[Fraction(1, 2)]], validate=False)
        report = verify_schedule(sched)
        assert not report.ok
        assert any("unfinished" in p for p in report.problems)


class TestRatioStudy:
    def test_with_exact_oracle(self):
        instances = [(s, uniform_instance(2, 4, seed=s)) for s in range(4)]
        study = run_ratio_study(
            instances,
            [GreedyBalance(), RoundRobin()],
            optimal=lambda inst: opt_res_assignment(inst).makespan,
        )
        assert study.exact_reference
        by_name = {s.policy: s for s in study.stats}
        assert by_name["greedy-balance"].max_ratio <= Fraction(3, 2)
        assert by_name["round-robin"].max_ratio <= 2
        assert study.best().mean_ratio <= by_name["round-robin"].mean_ratio

    def test_with_lower_bound_reference(self):
        instances = [(s, uniform_instance(3, 4, seed=s)) for s in range(3)]
        study = run_ratio_study(instances, [GreedyBalance()])
        assert not study.exact_reference
        stat = study.stats[0]
        assert stat.count == 3
        assert stat.max_ratio >= 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            run_ratio_study([], [GreedyBalance()])

    def test_rows_render(self):
        instances = [(0, uniform_instance(2, 3, seed=0))]
        study = run_ratio_study(instances, [GreedyBalance()])
        row = study.stats[0].as_row()
        assert row["policy"] == "greedy-balance"
        assert row["instances"] == 1
