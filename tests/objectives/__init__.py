"""Objective-layer tests."""
