"""Objective-layer invariants (the ISSUE 4 property-test satellite).

Pinned here:

* ``Makespan.value`` equals ``Schedule.makespan`` / the kernel
  makespan on 100+ seeded instances across k in {1, 2, 3};
* tardiness == 0  <=>  every deadline met (and the misses/lateness
  consistency triple);
* weighted flow with unit weights equals the total completion time on
  static instances;
* online accumulators agree with the independent closed-form
  evaluators in ``repro.analysis.metrics``;
* registry and ratio-guard semantics.
"""

from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import get_policy
from repro.analysis import (
    deadline_misses,
    max_lateness,
    total_completion_time,
    total_tardiness,
    weighted_flow_time,
)
from repro.backends import ExactBackend
from repro.generators import (
    multi_resource_instance,
    uniform_instance,
    with_arrivals,
    with_deadlines,
    with_weights,
)
from repro.objectives import (
    Makespan,
    Tardiness,
    WeightedFlowTime,
    available_objectives,
    get_objective,
)

from ..conftest import unit_instances


class TestRegistry:
    def test_known_objectives_registered(self):
        names = available_objectives()
        for expected in (
            "makespan",
            "weighted-flow",
            "tardiness",
            "max-lateness",
            "deadline-misses",
        ):
            assert expected in names

    def test_get_objective_unknown(self):
        with pytest.raises(KeyError, match="unknown objective"):
            get_objective("does-not-exist")

    def test_tardiness_mode_validation(self):
        with pytest.raises(ValueError, match="unknown tardiness mode"):
            Tardiness("nope")

    def test_all_objectives_minimized(self):
        for name in available_objectives():
            assert get_objective(name).sense == "min"


class TestMakespanIdentity:
    """Makespan.value == Schedule.makespan on 100 seeded instances,
    k in {1, 2, 3} (k > 1 through the kernel-direct backend result)."""

    @pytest.mark.parametrize("seed", range(100))
    def test_k1_schedule(self, seed):
        inst = uniform_instance(2 + seed % 4, 2 + seed % 5, seed=seed)
        schedule = get_policy("greedy-balance").run(inst)
        assert Makespan().value(schedule) == schedule.makespan

    @pytest.mark.parametrize("k", [2, 3])
    @pytest.mark.parametrize("seed", range(25))
    def test_multi_resource_backend(self, k, seed):
        inst = multi_resource_instance(3, 3, k, seed=seed)
        result = ExactBackend().run(
            inst, get_policy("greedy-balance"), record_shares=False
        )
        assert Makespan().value(result) == result.makespan

    def test_lower_bound_is_instance_bound(self):
        inst = uniform_instance(3, 4, seed=0)
        assert Makespan().lower_bound(inst) == inst.makespan_lower_bound()


class TestTardinessInvariants:
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        inst=unit_instances(max_m=3, max_n=4),
        profile=st.sampled_from(["tight", "loose", "mixed"]),
        seed=st.integers(0, 10),
    )
    def test_zero_tardiness_iff_all_deadlines_met(self, inst, profile, seed):
        annotated = with_deadlines(inst, profile=profile, seed=seed)
        schedule = get_policy("edf-waterfill").run(annotated)
        tardy = Tardiness().value(schedule)
        misses = Tardiness("misses").value(schedule)
        lateness = Tardiness("max-lateness").value(schedule)
        all_met = all(
            t + 1 <= annotated.job(i, j).deadline
            for (i, j), t in schedule.completion_steps.items()
        )
        assert (tardy == 0) == all_met
        assert (misses == 0) == all_met
        assert (lateness <= 0) == all_met

    def test_no_deadlines_means_zero_everywhere(self):
        schedule = get_policy("greedy-balance").run(uniform_instance(3, 3, seed=1))
        assert Tardiness().value(schedule) == 0
        assert Tardiness("misses").value(schedule) == 0
        assert Tardiness("max-lateness").value(schedule) == 0

    def test_negative_max_lateness_when_loose(self):
        inst = uniform_instance(2, 2, seed=3).with_deadlines([[50, 50], [50, 50]])
        schedule = get_policy("greedy-balance").run(inst)
        assert Tardiness("max-lateness").value(schedule) < 0
        assert Tardiness().value(schedule) == 0


class TestFlowInvariants:
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(inst=unit_instances(max_m=3, max_n=4))
    def test_unit_weights_static_equals_total_completion(self, inst):
        schedule = get_policy("greedy-balance").run(inst)
        assert WeightedFlowTime().value(schedule) == total_completion_time(
            schedule
        )

    def test_releases_subtracted(self):
        inst = uniform_instance(2, 2, seed=5).with_releases([0, 3])
        schedule = get_policy("greedy-balance").run(inst)
        flow = WeightedFlowTime().value(schedule)
        assert flow == sum(
            t + 1 - inst.release(i)
            for (i, _j), t in schedule.completion_steps.items()
        )

    def test_weights_scale_contributions(self):
        base = uniform_instance(2, 2, seed=6)
        doubled = base.with_weights([[2, 2], [2, 2]])
        policy = get_policy("greedy-balance")
        assert WeightedFlowTime().value(policy.run(doubled)) == 2 * (
            WeightedFlowTime().value(policy.run(base))
        )

    @pytest.mark.parametrize("seed", range(20))
    def test_value_respects_lower_bound(self, seed):
        inst = with_weights(
            with_arrivals(uniform_instance(3, 4, seed=seed), max_release=4, seed=seed),
            profile="uniform",
            seed=seed,
        )
        schedule = get_policy("weighted-srpt").run(inst)
        objective = WeightedFlowTime()
        assert objective.value(schedule) >= objective.lower_bound(inst)


class TestOnlineVsIndependent:
    """The online accumulators match the closed-form evaluators."""

    @pytest.mark.parametrize("seed", range(15))
    def test_all_objectives_agree_with_analysis(self, seed):
        inst = with_deadlines(
            with_weights(uniform_instance(3, 4, seed=seed), profile="skewed", seed=seed),
            profile="mixed",
            seed=seed,
        )
        schedule = get_policy("greedy-balance").run(inst)
        assert get_objective("weighted-flow").value(schedule) == (
            weighted_flow_time(schedule)
        )
        assert get_objective("tardiness").value(schedule) == (
            total_tardiness(schedule)
        )
        assert get_objective("max-lateness").value(schedule) == (
            max_lateness(schedule)
        )
        assert get_objective("deadline-misses").value(schedule) == (
            deadline_misses(schedule)
        )

    def test_online_observer_matches_value(self):
        from repro.core import ExactRuntime, run_kernel

        inst = with_deadlines(uniform_instance(3, 3, seed=9), profile="tight", seed=9)
        policy = get_policy("edf-waterfill")
        recorders = [
            get_objective(name).online_observer(inst)
            for name in available_objectives()
        ]
        run_kernel(ExactRuntime(inst), policy, recorders)
        schedule = policy.run(inst)
        for recorder in recorders:
            assert recorder.value == recorder.objective.value(schedule)


class TestRatioGuard:
    def test_positive_bound(self):
        assert get_objective("makespan").ratio(4, 2) == 2.0
        assert get_objective("weighted-flow").ratio(Fraction(3, 2), 1) == 1.5

    def test_zero_bound_zero_value_is_perfect(self):
        assert get_objective("tardiness").ratio(0, 0) == 1.0

    def test_zero_bound_positive_value_is_inf(self):
        assert get_objective("tardiness").ratio(5, 0) == float("inf")

    def test_value_needs_instance(self):
        from repro.backends.base import BackendResult

        orphan = BackendResult(backend="x", makespan=1)
        with pytest.raises(ValueError, match="needs the instance"):
            get_objective("makespan").value(orphan)
