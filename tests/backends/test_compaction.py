"""Lane compaction and compiled-mode plumbing of the batched engine.

Compaction is a pure bookkeeping optimization: once the live fraction
of a ragged batch drops below the threshold the state shrinks to the
surviving lanes, and every result (makespans, objective values, error
attribution) must be reported against *original* lane indices exactly
as an uncompacted run reports them.  These tests pin that equivalence,
the ``compactions``/``batch.compactions`` accounting, and the
``compiled``/``compact_threshold`` parameter plumbing through
``run_batch`` and ``BatchRunner``.
"""

import numpy as np
import pytest

from repro.algorithms import get_policy
from repro.algorithms.base import _fill_arrays_batch_multi, _fill_arrays_multi
from repro.backends import BatchRunner, run_batch
from repro.backends.batched import BatchVectorRuntime
from repro.exceptions import BackendError
from repro.generators import (
    multi_resource_instance,
    uniform_instance,
    with_arrivals,
)

OBJECTIVES = ("makespan", "weighted-flow")


def _ragged_batch(seed, lanes=12):
    """A batch with widely mixed makespans, so most lanes finish early."""
    insts = [uniform_instance(2, 1, seed=seed + j) for j in range(lanes - 2)]
    insts.append(uniform_instance(4, 8, seed=seed + 100))
    insts.append(
        with_arrivals(
            uniform_instance(3, 6, seed=seed + 200), max_release=8, seed=seed
        )
    )
    return insts


class TestCompactionEquivalence:
    @pytest.mark.parametrize("policy_name", ["greedy-balance", "round-robin"])
    @pytest.mark.parametrize("seed", range(5))
    def test_ragged_batch_results_unchanged(self, policy_name, seed):
        insts = _ragged_batch(seed)
        base = run_batch(
            insts,
            policy_name,
            objectives=OBJECTIVES,
            compiled="off",
            compact_threshold=None,
        )
        compacted = run_batch(
            insts,
            policy_name,
            objectives=OBJECTIVES,
            compiled="off",
            compact_threshold=0.5,
        )
        assert compacted.compactions > 0  # the ragged shape triggers it
        assert np.array_equal(base.makespans, compacted.makespans)
        for name in OBJECTIVES:
            # Bit-identity: dead lanes contribute nothing to survivors.
            assert base.objective_values[name] == compacted.objective_values[name]
        assert base.steps == compacted.steps

    @pytest.mark.parametrize("seed", range(3))
    def test_multires_ragged_batch(self, seed):
        insts = [
            multi_resource_instance(3, 1, 2, seed=seed + j) for j in range(6)
        ] + [multi_resource_instance(3, 7, 3, seed=seed + 50)]
        base = run_batch(
            insts, "greedy-balance", compiled="off", compact_threshold=None
        )
        compacted = run_batch(
            insts, "greedy-balance", compiled="off", compact_threshold=0.5
        )
        assert compacted.compactions > 0
        assert np.array_equal(base.makespans, compacted.makespans)

    def test_uniform_batch_never_compacts(self):
        """Lanes finishing together leave nothing to compact."""
        insts = [uniform_instance(3, 3, seed=7)] * 6
        result = run_batch(insts, "greedy-balance", compiled="off")
        assert result.compactions == 0

    def test_small_batches_never_compact(self):
        """Below 4 lanes the bookkeeping outweighs the saving."""
        insts = _ragged_batch(0)[:3]
        result = run_batch(
            insts, "greedy-balance", compiled="off", compact_threshold=0.9
        )
        assert result.compactions == 0

    def test_threshold_validation(self):
        insts = [uniform_instance(2, 2, seed=0)]
        with pytest.raises(ValueError):
            BatchVectorRuntime(
                insts, get_policy("greedy-balance"), compact_threshold=1.5
            )

    def test_compaction_telemetry_counter(self):
        from repro.telemetry import TelemetrySession, use_session

        session = TelemetrySession()
        with use_session(session):
            result = run_batch(
                _ragged_batch(3),
                "greedy-balance",
                compiled="off",
                compact_threshold=0.5,
            )
        counters = {
            name: metric.value
            for name, labels, metric in session.metrics.items()
            if name == "batch.compactions"
        }
        assert result.compactions > 0
        assert counters.get("batch.compactions") == result.compactions


class TestBatchedMultiFillBitIdentity:
    """Satellite check: the (B, k, m) fill == the per-lane fill, bitwise."""

    @pytest.mark.parametrize("seed", range(10))
    def test_matches_per_lane_fill(self, seed):
        rng = np.random.default_rng(seed)
        B, k, m = 6, int(rng.integers(2, 4)), int(rng.integers(2, 8))
        remaining = rng.uniform(0, 1.5, (B, m))
        req_matrix = rng.uniform(0, 0.8, (B, k, m)) * (
            rng.random((B, k, m)) < 0.8
        )
        rstar = req_matrix.max(axis=1)
        eligible = (rng.random((B, m)) < 0.85) & (rstar > 0)
        order = np.argsort(rng.random((B, m)), axis=1).astype(np.int64)
        got = _fill_arrays_batch_multi(
            remaining, rstar, req_matrix, order, eligible, 1.0
        )
        for b in range(B):
            # The per-lane core has no eligibility mask; zeroing the
            # remaining work retires a processor the same way.
            masked = np.where(eligible[b], remaining[b], 0.0)
            want = _fill_arrays_multi(
                masked, rstar[b], req_matrix[b], order[b], 1.0
            )
            assert np.array_equal(got[b], want), b


class TestBatchRunnerCompiled:
    def test_compiled_threads_through_batched_execution(self):
        insts = [uniform_instance(2, 2, seed=s) for s in range(4)]
        on = BatchRunner(
            backend="vector", workers=1, execution="batched", compiled="on"
        ).run(insts)
        off = BatchRunner(
            backend="vector", workers=1, execution="batched", compiled="off"
        ).run(insts)
        assert on.makespans == off.makespans

    def test_compiled_threads_through_process_execution(self):
        insts = [uniform_instance(2, 2, seed=s) for s in range(3)]
        on = BatchRunner(backend="vector", workers=1, compiled="on").run(insts)
        off = BatchRunner(backend="vector", workers=1, compiled="off").run(insts)
        assert on.makespans == off.makespans

    def test_compiled_on_requires_vector_backend(self):
        with pytest.raises(BackendError):
            BatchRunner(backend="exact", compiled="on")

    def test_exact_backend_ignores_auto(self):
        insts = [uniform_instance(2, 2, seed=1)]
        result = BatchRunner(
            backend="exact", workers=1, compiled="auto"
        ).run(insts)
        assert len(result.rows) == 1

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            BatchRunner(compiled="sometimes")


class TestLocalSearchCompiled:
    def test_sequencer_compiled_modes_agree(self):
        from repro.sequencing import get_sequencer

        inst = uniform_instance(3, 4, seed=3)
        results = []
        for mode in ("off", "on"):
            seq = get_sequencer(
                "local-search", budget=30, seed=0, compiled=mode
            )
            results.append(seq.sequence(inst))
            assert seq.last_stats["evaluations"] > 0
        assert results[0] == results[1]  # same search trajectory

    def test_batched_evaluation_with_compiled(self):
        from repro.sequencing import get_sequencer

        inst = uniform_instance(3, 4, seed=4)
        seq = get_sequencer(
            "local-search", budget=24, seed=1, batch_lanes=8, compiled="on"
        )
        better = seq.sequence(inst)
        assert inst.same_bag(better)
