"""Cross-validation of the vector backend against the exact one.

The acceptance bar for the float path: makespans agree within 1e-9
relative error on hundreds of random instances, and per-step shares
match within tolerance for the analyzed policies (RoundRobin,
GreedyBalance).
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.algorithms import (
    GreedyBalance,
    Policy,
    RoundRobin,
    available_policies,
    get_policy,
)
from repro.analysis import verify_share_rows
from repro.backends import (
    BackendResult,
    ExactBackend,
    VectorBackend,
    available_backends,
    cross_validate,
    get_backend,
)
from repro.core import run_policy
from repro.exceptions import BackendError, VectorizationUnsupportedError
from repro.generators import (
    general_size_instance,
    ragged_instance,
    uniform_instance,
)

from ..conftest import unit_instances

RTOL = 1e-9
SHARE_TOL = 1e-9


def assert_agreement(instance, policy):
    check = cross_validate(instance, policy, rtol=RTOL)
    assert check.ok, (
        f"{policy.name}: exact={check.exact_makespan} "
        f"vector={check.vector_makespan} on {instance!r}"
    )
    assert check.max_share_deviation <= SHARE_TOL


class TestCrossValidation:
    """200 seeded random instances, each checked for both analyzed
    policies (makespan within 1e-9 relative + per-step share match)."""

    @pytest.mark.parametrize("policy_cls", [RoundRobin, GreedyBalance])
    @pytest.mark.parametrize("seed", range(100))
    def test_uniform_unit_instances(self, policy_cls, seed):
        m = 2 + seed % 5
        n = 2 + seed % 7
        assert_agreement(uniform_instance(m, n, seed=seed), policy_cls())

    @pytest.mark.parametrize("policy_cls", [RoundRobin, GreedyBalance])
    @pytest.mark.parametrize("seed", range(50))
    def test_general_size_instances(self, policy_cls, seed):
        inst = general_size_instance(2 + seed % 4, 3, max_size=3, seed=seed)
        assert_agreement(inst, policy_cls())

    @pytest.mark.parametrize("policy_cls", [RoundRobin, GreedyBalance])
    @pytest.mark.parametrize("seed", range(50))
    def test_ragged_instances(self, policy_cls, seed):
        assert_agreement(ragged_instance(4, (1, 6), seed=seed), policy_cls())

    @pytest.mark.parametrize("name", sorted(available_policies()))
    @pytest.mark.parametrize("seed", range(5))
    def test_every_registered_policy_has_an_agreeing_vector_path(
        self, name, seed
    ):
        policy = get_policy(name)
        assert policy.supports_vector
        assert_agreement(uniform_instance(3, 5, seed=seed), policy)

    @settings(
        max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(inst=unit_instances(max_m=4, max_n=5))
    def test_property_agreement(self, inst):
        assert_agreement(inst, GreedyBalance())
        assert_agreement(inst, RoundRobin())


class TestVectorBackend:
    def test_tolerant_verification_of_vector_rows(self):
        inst = uniform_instance(6, 8, seed=3)
        result = VectorBackend().run(inst, GreedyBalance())
        report = verify_share_rows(inst, result.shares)
        assert report.ok, report.problems
        # Completion accounting agrees with the backend's own record.
        assert report.completion_steps == result.completion_steps

    def test_completion_steps_match_exact(self):
        inst = uniform_instance(5, 6, seed=11)
        exact = ExactBackend().run(inst, GreedyBalance())
        vector = VectorBackend().run(inst, GreedyBalance())
        assert vector.completion_steps == exact.completion_steps

    def test_record_shares_off(self):
        inst = uniform_instance(4, 4, seed=0)
        result = VectorBackend().run(inst, GreedyBalance(), record_shares=False)
        assert result.shares is None
        assert result.makespan == GreedyBalance().run(inst).makespan
        with pytest.raises(ValueError):
            result.share_rows()

    def test_rejects_unvectorized_policy(self):
        class ExactOnly(Policy):
            name = "exact-only"

            def shares(self, state):
                return [0] * state.num_processors

        with pytest.raises(VectorizationUnsupportedError):
            VectorBackend().run(uniform_instance(2, 2, seed=0), ExactOnly())
        assert not ExactOnly().supports_vector

    def test_zero_requirement_jobs(self):
        from repro.core import Instance

        inst = Instance.from_requirements([[0, 0, "1/2"], ["3/4", "1/4"]])
        assert_agreement(inst, GreedyBalance())

    def test_tol_validation(self):
        with pytest.raises(ValueError):
            VectorBackend(tol=0.0)


class TestBackendPlumbing:
    def test_registry(self):
        assert available_backends() == ["exact", "vector"]
        assert isinstance(get_backend("exact"), ExactBackend)
        assert isinstance(get_backend("vector"), VectorBackend)
        with pytest.raises(BackendError):
            get_backend("gpu")

    def test_exact_backend_carries_schedule(self):
        inst = uniform_instance(3, 4, seed=1)
        result = ExactBackend().run(inst, GreedyBalance())
        assert isinstance(result, BackendResult)
        assert result.schedule is not None
        assert result.schedule.makespan == result.makespan
        assert result.share_rows() == [
            tuple(row) for row in result.schedule.share_rows()
        ]

    def test_run_policy_dispatch(self):
        inst = uniform_instance(3, 4, seed=2)
        exact = run_policy(inst, GreedyBalance(), backend="exact")
        vector = run_policy(inst, GreedyBalance(), backend="vector")
        assert exact.makespan == vector.makespan

    def test_policy_run_backend(self):
        inst = uniform_instance(3, 4, seed=2)
        result = GreedyBalance().run_backend(inst, backend="vector")
        assert result.backend == "vector"
        assert result.makespan == GreedyBalance().run(inst).makespan


class TestEngineBackend:
    def test_vector_trace_matches_exact(self):
        from repro.generators import make_io_workload
        from repro.simulation import run_workload

        tasks = make_io_workload(6, seed=5)
        exact = run_workload(tasks, GreedyBalance(), unit_split=True)
        vector = run_workload(
            tasks, GreedyBalance(), unit_split=True, backend="vector"
        )
        assert vector.makespan == exact.makespan
        assert [cs.completion_step for cs in vector.core_summaries] == [
            cs.completion_step for cs in exact.core_summaries
        ]
        assert [cs.busy_steps for cs in vector.core_summaries] == [
            cs.busy_steps for cs in exact.core_summaries
        ]
        assert (
            abs(float(vector.bus_utilization) - float(exact.bus_utilization))
            < 1e-9
        )

    def test_sim_experiment_on_vector_backend(self):
        from repro.experiments import get_experiment
        from repro.experiments.runner import run_experiment

        exp = get_experiment("SIM")
        result = run_experiment(
            exp, backend="vector", num_cores=4, seeds=(0,)
        )
        assert result.params["backend"] == "vector"
        assert result.verdict is True

    def test_exact_only_experiment_rejects_vector(self):
        from repro.experiments import get_experiment
        from repro.experiments.runner import run_experiment

        with pytest.raises(ValueError):
            run_experiment(get_experiment("FIG1"), backend="vector")
