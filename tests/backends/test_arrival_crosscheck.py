"""Exact-vs-vector cross-validation on arrival (release-time) instances.

The refactor issue's acceptance bar: >= 100 seeded arrival instances
agree between the exact and vector kernels within 1e-9 relative
makespan error.  Shares are compared too on a subset (they should be
bit-close, not merely the makespans).
"""

import pytest

from repro.algorithms import get_policy
from repro.backends import cross_validate
from repro.generators import uniform_instance, with_arrivals

#: (policy, #instances) -- 120 instances total, three policy shapes.
_PLAN = [
    ("greedy-balance", 50),
    ("round-robin", 40),
    ("greedy-finish-jobs", 30),
]


def _arrival_instance(seed: int):
    """Seeded arrival instance: requirements and releases both derive
    deterministically from the seed."""
    spread = 2 + (seed % 9)  # spreads 2..10
    return with_arrivals(
        uniform_instance(4, 5, grid=100, seed=seed),
        max_release=spread,
        seed=seed + 7_777,
    )


@pytest.mark.parametrize("policy_name,count", _PLAN)
def test_arrival_crosscheck_campaign(policy_name, count):
    policy = get_policy(policy_name)
    base = {"greedy-balance": 0, "round-robin": 10_000, "greedy-finish-jobs": 20_000}[
        policy_name
    ]
    for k in range(count):
        seed = base + k
        instance = _arrival_instance(seed)
        check = cross_validate(
            instance, policy, rtol=1e-9, compare_shares=(k % 5 == 0)
        )
        assert check.ok, (
            f"seed {seed}: exact={check.exact_makespan} "
            f"vector={check.vector_makespan}"
        )
        if check.max_share_deviation is not None:
            assert check.max_share_deviation < 1e-7, seed


def test_plan_covers_at_least_100_instances():
    assert sum(count for _, count in _PLAN) >= 100
