"""Exact-vs-vector agreement on objective values (ISSUE 4 acceptance).

Over 100+ seeded instances carrying all three annotation axes at once
-- staggered arrivals, skewed/uniform weights, and mixed deadlines --
both backends must report identical objective values: weighted flow
exactly, and the tardiness family exactly too (both derive from
integer completion steps, so the vector backend's completion
tolerance collapses to step-equality on grid instances).
"""

import pytest

from repro.algorithms import get_policy
from repro.backends import cross_validate
from repro.backends.batch import make_campaign_instances

OBJECTIVES = (
    "makespan",
    "weighted-flow",
    "tardiness",
    "max-lateness",
    "deadline-misses",
)

#: 120 annotated instances: 60 seeds x 2 policies checked per seed.
SEEDS = range(60)


def annotated_instance(seed: int):
    (inst,) = make_campaign_instances(
        1,
        2 + seed % 4,
        2 + seed % 5,
        seed=seed,
        max_release=seed % 7,
        weights_profile="skewed" if seed % 2 else "uniform",
        deadline_profile=("tight", "loose", "mixed")[seed % 3],
    )
    return inst


class TestObjectiveCrossCheck:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("policy", ["edf-waterfill", "weighted-srpt"])
    def test_annotated_instances_agree(self, seed, policy):
        inst = annotated_instance(seed)
        check = cross_validate(
            inst,
            get_policy(policy),
            compare_shares=False,
            objectives=OBJECTIVES,
        )
        assert check.ok, (seed, policy, check)
        # Flow exactly; tardiness family from integer completion steps,
        # hence exact as well.
        for name, (exact_value, vector_value) in check.objective_values.items():
            assert float(exact_value) == float(vector_value), (
                seed,
                policy,
                name,
                exact_value,
                vector_value,
            )

    @pytest.mark.parametrize("seed", range(10))
    def test_poisson_arrival_instances_agree(self, seed):
        (inst,) = make_campaign_instances(
            1,
            4,
            4,
            seed=seed,
            arrival_rate=1.0,
            weights_profile="skewed",
            deadline_profile="mixed",
        )
        check = cross_validate(
            inst,
            get_policy("greedy-balance"),
            compare_shares=False,
            objectives=OBJECTIVES,
        )
        assert check.ok, (seed, check)
        assert check.max_objective_error == 0.0

    def test_objective_values_surface_on_result(self):
        inst = annotated_instance(0)
        check = cross_validate(
            inst, get_policy("edf-waterfill"), objectives=("tardiness",)
        )
        assert set(check.objective_values) == {"tardiness"}
        assert check.max_objective_error is not None

    def test_no_objectives_keeps_legacy_shape(self):
        inst = annotated_instance(1)
        check = cross_validate(inst, get_policy("greedy-balance"))
        assert check.objective_values is None
        assert check.max_objective_error is None
