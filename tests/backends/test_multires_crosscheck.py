"""Exact-vs-vector agreement on multi-resource instances.

The acceptance bar of the share-matrix extension: on 100+ seeded
``k in {2, 3}`` instances, the float64 ``(k, m)`` path must agree
with the exact Fraction path within 1e-9 relative makespan error
(integer makespans, so that means exact equality), across profiles,
policies, and the arrival axis.  The independent epsilon-tolerant
verifier must also accept every recorded share-matrix run.
"""

import pytest

from repro.algorithms import get_policy
from repro.analysis import verify_share_rows
from repro.backends import VectorBackend, cross_validate, make_campaign_instances
from repro.generators import (
    multi_resource_instance,
    uniform_instance,
    with_arrivals,
    with_resources,
)

RTOL = 1e-9

#: 2 k-values x 3 profiles x 17 seeds = 102 instances, each checked
#: under two policies = 204 cross-validations (the acceptance bar is
#: 100+ seeded k in {2, 3} instances within 1e-9).
PROFILES = ("independent", "correlated", "anti-correlated")
SEEDS = tuple(range(17))


def _cases():
    for k in (2, 3):
        for profile in PROFILES:
            for seed in SEEDS:
                yield k, profile, seed


@pytest.mark.parametrize(
    "k,profile,seed", list(_cases()), ids=lambda v: str(v)
)
def test_static_multires_agreement(k, profile, seed):
    instance = multi_resource_instance(4, 5, k, profile=profile, seed=seed)
    for policy_name in ("greedy-balance", "round-robin"):
        check = cross_validate(instance, get_policy(policy_name), rtol=RTOL)
        assert check.ok, (policy_name, check)
        assert check.max_share_deviation < 1e-9


@pytest.mark.parametrize("seed", range(10))
def test_arrival_multires_agreement(seed):
    base = with_arrivals(
        uniform_instance(4, 5, seed=seed), max_release=8, seed=500 + seed
    )
    instance = with_resources(base, 2, profile="correlated", seed=seed)
    check = cross_validate(instance, get_policy("greedy-balance"), rtol=RTOL)
    assert check.ok, check


@pytest.mark.parametrize("policy_name", [
    "greedy-finish-jobs",
    "largest-requirement-first",
    "fewest-remaining-jobs-first",
    "proportional-share",
])
def test_all_policies_agree_on_k3(policy_name):
    for seed in range(5):
        instance = multi_resource_instance(4, 4, 3, seed=seed)
        check = cross_validate(instance, get_policy(policy_name), rtol=RTOL)
        assert check.ok, (seed, check)


def test_campaign_instances_cross_validate():
    instances = make_campaign_instances(
        5, 4, 4, seed=11, resources=3, resource_profile="anti-correlated"
    )
    assert all(inst.num_resources == 3 for inst in instances)
    for instance in instances:
        assert cross_validate(instance, get_policy("greedy-balance")).ok


def test_vector_rows_pass_independent_verifier():
    for seed in range(5):
        instance = multi_resource_instance(5, 4, 2, seed=seed)
        result = VectorBackend().run(instance, get_policy("greedy-balance"))
        report = verify_share_rows(instance, result.shares)
        assert report.ok, report.problems
        assert report.completion_steps == result.completion_steps


def test_exact_rows_pass_independent_verifier():
    instance = multi_resource_instance(4, 4, 3, seed=1)
    result = get_policy("greedy-balance").run_backend(instance, backend="exact")
    report = verify_share_rows(instance, result.shares)
    assert report.ok, report.problems
