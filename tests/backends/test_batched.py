"""Mechanics of the batched engine: results, fallbacks, errors, telemetry.

The fine-grained behavior contract of
:class:`~repro.backends.batched.BatchVectorRuntime` and the
``execution="batched"`` mode of
:class:`~repro.backends.batch.BatchRunner` -- the numerical agreement
bar lives in ``test_batched_crosscheck.py``.
"""

import numpy as np
import pytest

from repro.algorithms import GreedyBalance, Policy, get_policy
from repro.backends import (
    BatchRunner,
    BatchVectorRuntime,
    run_batch,
)
from repro.core import Instance
from repro.exceptions import (
    BackendError,
    InfeasibleAssignmentError,
    SimulationLimitError,
    VectorizationUnsupportedError,
)
from repro.generators import bag_instance, uniform_instance, with_arrivals
from repro.telemetry import TelemetrySession, use_session


class _ArrayOnlyBalance(GreedyBalance):
    """GreedyBalance stripped of its batched path (fallback probe)."""

    name = "array-only-balance"
    # Reinstating the base default makes ``supports_batch`` False, so
    # the runtime must step this policy lane by lane via shares_array.
    shares_batch = Policy.shares_batch


class _ExactOnly(Policy):
    """A policy with no array path at all."""

    name = "exact-only"

    def shares(self, state):  # pragma: no cover - never stepped
        raise NotImplementedError


class _Overcommit(Policy):
    """Claims the batch path, then oversubscribes the resource."""

    name = "overcommit"

    def shares_array(self, state):  # pragma: no cover - batch path wins
        raise NotImplementedError

    def shares_batch(self, state):
        return np.full(
            (state.num_lanes, state.num_processors), 1.0, dtype=np.float64
        )


class _WrongShape(Policy):
    """Claims the batch path, then returns a single-lane row."""

    name = "wrong-shape"

    def shares_array(self, state):  # pragma: no cover - batch path wins
        raise NotImplementedError

    def shares_batch(self, state):
        return np.zeros(state.num_processors, dtype=np.float64)


def _batch(n=3, *, seed=0):
    return [bag_instance(3, 4, seed=seed + j) for j in range(n)]


class TestRunResult:
    def test_result_accounting(self):
        insts = _batch(4)
        result = run_batch(insts, "greedy-balance")
        assert result.lanes == 4
        assert result.makespans.shape == (4,)
        assert result.makespans.dtype == np.int64
        assert result.steps == int(result.makespans.max())
        assert result.lane_steps == int(result.makespans.sum())
        assert result.wall_seconds > 0
        assert result.batched_policy is True

    def test_objective_vectors_in_lane_order(self):
        insts = _batch(3)
        result = run_batch(insts, "greedy-balance", objectives=("makespan",))
        values = result.objective_values["makespan"]
        assert len(values) == 3
        assert values == [float(ms) for ms in result.makespans]

    def test_policy_resolved_by_name(self):
        by_name = run_batch(_batch(), "greedy-balance")
        by_object = run_batch(_batch(), GreedyBalance())
        assert by_name.makespans.tolist() == by_object.makespans.tolist()


class TestFallback:
    def test_array_only_policy_falls_back_lane_by_lane(self):
        insts = _batch(4, seed=7)
        fallback = run_batch(insts, _ArrayOnlyBalance())
        batched = run_batch(insts, GreedyBalance())
        assert fallback.batched_policy is False
        assert batched.batched_policy is True
        # The fallback is slower, never different.
        assert fallback.makespans.tolist() == batched.makespans.tolist()

    def test_fallback_handles_arrivals(self):
        insts = [
            with_arrivals(
                uniform_instance(3, 3, seed=s), max_release=4, seed=s
            )
            for s in range(3)
        ]
        fallback = run_batch(insts, _ArrayOnlyBalance())
        batched = run_batch(insts, GreedyBalance())
        assert fallback.makespans.tolist() == batched.makespans.tolist()

    def test_exact_only_policy_is_rejected(self):
        with pytest.raises(VectorizationUnsupportedError, match="exact-only"):
            BatchVectorRuntime(_batch(), _ExactOnly())


class TestErrorPaths:
    def test_empty_batch(self):
        with pytest.raises(BackendError, match="at least one instance"):
            run_batch([], "greedy-balance")

    def test_nonpositive_tolerance(self):
        with pytest.raises(ValueError, match="tol"):
            BatchVectorRuntime(_batch(), "greedy-balance", tol=0.0)

    def test_step_limit_names_offending_lane(self):
        insts = [
            Instance.from_percent([[100]]),  # finishes in 1 step
            Instance.from_percent([[100], [100], [100]]),  # needs 3
        ]
        with pytest.raises(SimulationLimitError, match="lane 1"):
            run_batch(insts, "greedy-balance", max_steps=2)

    def test_overcommitted_shares_rejected(self):
        with pytest.raises(InfeasibleAssignmentError, match="overused"):
            run_batch(_batch(), _Overcommit())

    def test_wrong_share_shape_rejected(self):
        with pytest.raises(InfeasibleAssignmentError, match="shape"):
            run_batch(_batch(), _WrongShape())


class TestTelemetry:
    def test_batched_run_span_and_metrics(self):
        insts = _batch(5)
        with use_session(TelemetrySession()) as session:
            result = run_batch(insts, "greedy-balance")
        (span,) = [
            r for r in session.tracer.records if r.name == "batched.run"
        ]
        assert span.attrs["lanes"] == 5
        assert span.attrs["steps"] == result.steps
        assert span.attrs["lane_steps"] == result.lane_steps
        assert span.attrs["policy"] == "greedy-balance"
        assert span.attrs["batched_policy"] is True
        metrics = session.metrics
        assert metrics.gauge("batch.lanes").value == 5
        assert metrics.counter("batched.runs").value == 1
        assert metrics.counter("batched.steps").value == result.steps
        assert (
            metrics.counter("batched.lane_steps").value == result.lane_steps
        )

    def test_no_session_no_overhead(self):
        result = run_batch(_batch(), "greedy-balance")
        assert result.lanes == 3  # ran fine without telemetry


class TestBatchedExecutionMode:
    """``BatchRunner(execution="batched")`` vs the multiprocessing path."""

    def test_rows_match_process_execution(self):
        insts = [bag_instance(3, 4, seed=s) for s in range(7)]
        batched = BatchRunner(
            execution="batched", batch_lanes=3, objectives=("makespan",)
        ).run(insts)
        processes = BatchRunner(workers=2, objectives=("makespan",)).run(
            insts
        )
        assert batched.makespans == processes.makespans
        assert batched.ratios == processes.ratios
        assert batched.objective_values("makespan") == (
            processes.objective_values("makespan")
        )

    def test_rows_match_with_sequencer(self):
        insts = [bag_instance(3, 3, seed=s) for s in range(4)]
        kwargs = dict(
            sequencer="local-search",
            sequencer_options={"budget": 12, "seed": 0},
        )
        batched = BatchRunner(execution="batched", **kwargs).run(insts)
        serial = BatchRunner(workers=1, **kwargs).run(insts)
        assert batched.makespans == serial.makespans

    def test_summary_records_execution_mode(self):
        insts = _batch(2)
        batched = BatchRunner(execution="batched").run(insts)
        assert batched.summary()["execution"] == "batched"
        # Legacy multiprocessing stores keep their exact shape.
        assert "execution" not in BatchRunner(workers=1).run(insts).summary()

    def test_unknown_execution_mode(self):
        with pytest.raises(BackendError, match="unknown execution mode"):
            BatchRunner(execution="threads")

    def test_bad_batch_lanes(self):
        with pytest.raises(BackendError, match="batch_lanes"):
            BatchRunner(execution="batched", batch_lanes=0)

    def test_batched_requires_vector_backend(self):
        with pytest.raises(BackendError, match="vector"):
            BatchRunner(backend="exact", execution="batched")
