"""Regression tests: policy names resolve at every public entry point.

``run_policy(inst, "round-robin")`` used to crash with a raw
``TypeError: 'str' object is not callable`` from the kernel's policy
query; the vector backend reported the even more misleading
``VectorizationUnsupportedError: ... does not implement shares_array``.
These tests pin the fix: every entry point resolves registry names,
unknown names raise :class:`UnknownPolicyError` listing
``available_policies()``, and the vector backend's capability check
only fires for genuine policy objects.
"""

import pytest

from repro.algorithms import (
    GreedyBalance,
    available_policies,
    get_policy,
    resolve_policy,
)
from repro.backends import BatchRunner, cross_validate, get_backend
from repro.core import Instance, run_policy, simulate
from repro.exceptions import (
    ReproError,
    UnknownPolicyError,
    VectorizationUnsupportedError,
)
from repro.generators import make_io_workload, uniform_instance
from repro.simulation.engine import ManyCoreEngine


@pytest.fixture
def inst() -> Instance:
    return Instance.from_percent([[60, 40, 30], [80, 20, 50]])


class TestResolvePolicy:
    def test_string_resolves_to_registered_policy(self):
        assert resolve_policy("round-robin").name == "round-robin"

    def test_object_passes_through_unchanged(self):
        policy = GreedyBalance()
        assert resolve_policy(policy) is policy

    def test_unknown_name_raises_listing_available(self):
        with pytest.raises(UnknownPolicyError) as err:
            resolve_policy("no-such-policy")
        message = str(err.value)
        assert "no-such-policy" in message
        for name in available_policies():
            assert name in message

    def test_unknown_policy_error_is_keyerror_and_repro_error(self):
        # Callers historically caught the registry's KeyError; the new
        # type must satisfy both idioms.
        with pytest.raises(KeyError):
            get_policy("nope")
        with pytest.raises(ReproError):
            get_policy("nope")


class TestEntryPoints:
    def test_run_policy_exact_accepts_name(self, inst):
        by_name = run_policy(inst, "round-robin")
        by_object = run_policy(inst, get_policy("round-robin"))
        assert by_name.makespan == by_object.makespan

    def test_run_policy_vector_accepts_name(self, inst):
        by_name = run_policy(inst, "round-robin", backend="vector")
        by_object = run_policy(
            inst, get_policy("round-robin"), backend="vector"
        )
        assert by_name.makespan == by_object.makespan

    def test_simulate_accepts_name(self, inst):
        assert (
            simulate(inst, "greedy-balance").makespan
            == simulate(inst, GreedyBalance()).makespan
        )

    def test_backend_run_accepts_name(self, inst):
        for backend in ("exact", "vector"):
            result = get_backend(backend).run(inst, "greedy-balance")
            assert result.makespan == GreedyBalance().run(inst).makespan

    def test_cross_validate_accepts_name(self, inst):
        assert cross_validate(inst, "greedy-balance").ok

    def test_batch_runner_resolves_names_in_workers(self):
        instances = [uniform_instance(3, 4, seed=s) for s in range(4)]
        result = BatchRunner(
            policy="round-robin", backend="vector", workers=1
        ).run(instances)
        expected = [
            run_policy(i, "round-robin", backend="vector").makespan
            for i in instances
        ]
        assert result.makespans == expected

    def test_engine_run_accepts_name(self):
        tasks = make_io_workload(3, seed=7)
        by_name = ManyCoreEngine(tasks).run("round-robin")
        by_object = ManyCoreEngine(tasks).run(get_policy("round-robin"))
        assert [c.completion_step for c in by_name.core_summaries] == [
            c.completion_step for c in by_object.core_summaries
        ]

    def test_unknown_name_raises_at_each_entry_point(self, inst):
        with pytest.raises(UnknownPolicyError):
            run_policy(inst, "bogus")
        with pytest.raises(UnknownPolicyError):
            simulate(inst, "bogus")
        with pytest.raises(UnknownPolicyError):
            cross_validate(inst, "bogus")
        with pytest.raises(UnknownPolicyError):
            get_backend("vector").run(inst, "bogus")
        with pytest.raises(UnknownPolicyError):
            BatchRunner(policy="bogus")
        with pytest.raises(UnknownPolicyError):
            ManyCoreEngine(make_io_workload(2, seed=0)).run("bogus")


class TestVectorCapabilityCheck:
    def test_string_policy_is_resolved_not_misreported(self, inst):
        # Before the fix this raised VectorizationUnsupportedError
        # claiming 'round-robin' lacks shares_array -- it does not.
        result = get_backend("vector").run(inst, "round-robin")
        assert result.makespan == run_policy(inst, "round-robin").makespan

    def test_capability_check_still_fires_for_exact_only_objects(self, inst):
        class ExactOnly:
            name = "exact-only"

            def __call__(self, state):  # pragma: no cover - never queried
                return [0] * state.num_processors

        with pytest.raises(VectorizationUnsupportedError) as err:
            get_backend("vector").run(inst, ExactOnly())
        assert "shares_array" in str(err.value)

    def test_unknown_string_raises_unknown_policy_not_capability(self, inst):
        with pytest.raises(UnknownPolicyError):
            get_backend("vector").make_runtime(inst, "bogus")
