"""BatchRunner: campaign sharding, aggregation, and determinism."""

import json

import pytest

from repro.backends import (
    BatchRunner,
    cross_validate,
    make_campaign_instances,
)
from repro.exceptions import BackendError


def strip_timing(rows):
    # "seconds" varies run to run and "worker" carries the executing
    # process pid -- both are telemetry, not results.
    return [
        {k: v for k, v in row.items() if k not in ("seconds", "worker")}
        for row in rows
    ]


class TestCampaignInstances:
    def test_deterministic_from_seed(self):
        a = make_campaign_instances(10, 4, 5, seed=7)
        b = make_campaign_instances(10, 4, 5, seed=7)
        assert a == b

    def test_distinct_seeds_distinct_instances(self):
        instances = make_campaign_instances(10, 4, 5, seed=0)
        assert len(set(instances)) == 10

    def test_families(self):
        for family in ("uniform", "bimodal", "heavy-tail", "general"):
            (inst,) = make_campaign_instances(1, 3, 4, family=family, seed=1)
            assert inst.num_processors == 3
        with pytest.raises(ValueError):
            make_campaign_instances(1, 3, 4, family="nope")


class TestBatchRunner:
    def test_serial_campaign(self):
        instances = make_campaign_instances(8, 4, 5, seed=0)
        result = BatchRunner(workers=1).run(instances)
        assert len(result.rows) == 8
        assert result.workers == 1
        assert all(row["makespan"] >= row["lower_bound"] for row in result.rows)
        assert all(row["ratio"] >= 1.0 for row in result.rows)
        summary = result.summary()
        assert summary["instances"] == 8
        assert summary["max_ratio"] >= summary["mean_ratio"] >= 1.0

    def test_deterministic_across_runs_and_worker_counts(self):
        instances = make_campaign_instances(12, 4, 5, seed=3)
        serial = BatchRunner(workers=1).run(instances)
        again = BatchRunner(workers=1).run(instances)
        sharded = BatchRunner(workers=3).run(instances)
        assert strip_timing(serial.rows) == strip_timing(again.rows)
        assert strip_timing(serial.rows) == strip_timing(sharded.rows)

    def test_backends_agree_on_campaign(self):
        instances = make_campaign_instances(6, 3, 4, seed=5)
        vector = BatchRunner(backend="vector", workers=1).run(instances)
        exact = BatchRunner(backend="exact", workers=1).run(instances)
        assert vector.makespans == exact.makespans

    def test_empty_campaign(self):
        result = BatchRunner(workers=1).run([])
        summary = result.summary()
        assert summary["instances"] == 0
        assert summary["policy"] == "greedy-balance"

    def test_unknown_names_fail_fast(self):
        with pytest.raises(KeyError):
            BatchRunner(policy="nope")
        with pytest.raises(BackendError):
            BatchRunner(backend="nope")

    def test_json_store_roundtrip(self, tmp_path):
        instances = make_campaign_instances(4, 3, 4, seed=2)
        result = BatchRunner(workers=1).run(instances)
        path = tmp_path / "campaign.json"
        result.to_json(path)
        data = json.loads(path.read_text())
        assert data["summary"]["instances"] == 4
        assert strip_timing(data["rows"]) == strip_timing(result.rows)

    def test_general_family_campaign_cross_validates(self):
        from repro.algorithms import GreedyBalance

        for inst in make_campaign_instances(5, 3, 3, family="general", seed=9):
            assert cross_validate(inst, GreedyBalance()).ok


class TestObjectiveCampaigns:
    """BatchRunner with the pluggable objective axis."""

    def test_objective_rows_and_summary(self):
        instances = make_campaign_instances(
            6, 3, 4, seed=0, weights_profile="uniform", deadline_profile="mixed"
        )
        result = BatchRunner(
            workers=1, objectives=("makespan", "weighted-flow", "tardiness")
        ).run(instances)
        assert result.objectives == ("makespan", "weighted-flow", "tardiness")
        for row in result.rows:
            report = row["objectives"]
            assert set(report) == {"makespan", "weighted-flow", "tardiness"}
            # Makespan through the objective layer equals the legacy column.
            assert report["makespan"]["value"] == row["makespan"]
            assert report["weighted-flow"]["value"] >= report["weighted-flow"][
                "lower_bound"
            ]
        summary = result.summary()
        assert set(summary["objectives"]) == {
            "makespan",
            "weighted-flow",
            "tardiness",
        }
        assert summary["objectives"]["makespan"]["mean_value"] == summary[
            "mean_makespan"
        ]

    def test_objective_values_accessor(self):
        instances = make_campaign_instances(3, 3, 3, seed=1)
        result = BatchRunner(workers=1, objectives=("weighted-flow",)).run(
            instances
        )
        values = result.objective_values("weighted-flow")
        assert len(values) == 3
        assert all(v > 0 for v in values)

    def test_legacy_campaign_shape_unchanged(self):
        instances = make_campaign_instances(3, 3, 3, seed=2)
        result = BatchRunner(workers=1).run(instances)
        assert result.objectives == ()
        assert all("objectives" not in row for row in result.rows)
        assert "objectives" not in result.summary()

    def test_unknown_objective_fails_fast(self):
        with pytest.raises(KeyError, match="unknown objective"):
            BatchRunner(objectives=("nope",))

    def test_deterministic_across_worker_counts(self):
        instances = make_campaign_instances(
            8, 3, 3, seed=3, deadline_profile="tight"
        )
        serial = BatchRunner(workers=1, objectives=("tardiness",)).run(instances)
        sharded = BatchRunner(workers=3, objectives=("tardiness",)).run(instances)
        assert strip_timing(serial.rows) == strip_timing(sharded.rows)

    def test_exact_and_vector_agree_on_objectives(self):
        instances = make_campaign_instances(
            4, 3, 3, seed=4, weights_profile="skewed", deadline_profile="loose"
        )
        objectives = ("weighted-flow", "tardiness", "deadline-misses")
        vector = BatchRunner(
            backend="vector", workers=1, objectives=objectives
        ).run(instances)
        exact = BatchRunner(
            backend="exact", workers=1, objectives=objectives
        ).run(instances)
        for v_row, e_row in zip(vector.rows, exact.rows):
            assert v_row["objectives"] == e_row["objectives"]
