"""Seeded crosscheck suite for the batched evaluation engine.

The acceptance bar for ``run_batch`` /
:class:`~repro.backends.batched.BatchVectorRuntime`: every lane of a
batched run must match a standalone
:class:`~repro.backends.vector.VectorBackend` run of the same instance
within 1e-9 (integer makespans, so equality; objective values within
``RTOL``), and agree with the exact Fraction backend's makespans --
across ``k in {1, 2, 3}``, the arrival axis, weighted and
deadline-carrying jobs, ragged batches (mixed ``m``, ``n``, ``k``,
makespans), and the degenerate ``B = 1`` batch.
"""

import pytest

from repro.algorithms import available_policies, get_policy
from repro.backends import ExactBackend, VectorBackend, run_batch
from repro.generators import (
    bag_instance,
    general_size_instance,
    multi_resource_instance,
    ragged_instance,
    uniform_instance,
    with_arrivals,
    with_deadlines,
    with_resources,
    with_weights,
)

RTOL = 1e-9

OBJECTIVES = ("makespan", "weighted-flow", "tardiness")


def assert_lanes_match_vector(instances, policy, *, objectives=OBJECTIVES):
    """Every lane of one batched run == its standalone vector run."""
    backend = VectorBackend()
    result = run_batch(instances, policy, objectives=objectives)
    assert result.lanes == len(instances)
    for b, inst in enumerate(instances):
        ref = backend.run(
            inst, policy, record_shares=False, objectives=objectives
        )
        assert int(result.makespans[b]) == ref.makespan, (
            policy.name,
            b,
            inst,
        )
        for name in objectives:
            got = result.objective_values[name][b]
            want = ref.objective_values[name]
            assert got == pytest.approx(want, rel=RTOL, abs=RTOL), (
                policy.name,
                name,
                b,
            )
    return result


class TestSingleResourceAgreement:
    """Seeded k=1 batches, lane-for-lane against the vector backend."""

    @pytest.mark.parametrize("policy_name", ["greedy-balance", "round-robin"])
    @pytest.mark.parametrize("seed", range(10))
    def test_uniform_batches(self, policy_name, seed):
        insts = [
            uniform_instance(2 + (seed + j) % 4, 2 + j % 5, seed=17 * seed + j)
            for j in range(6)
        ]
        assert_lanes_match_vector(insts, get_policy(policy_name))

    @pytest.mark.parametrize("seed", range(5))
    def test_general_size_batches(self, seed):
        insts = [
            general_size_instance(3, 4, seed=29 * seed + j) for j in range(5)
        ]
        assert_lanes_match_vector(insts, get_policy("greedy-balance"))

    def test_all_policies_batch_consistently(self):
        insts = [bag_instance(4, 5, seed=s) for s in range(4)]
        for policy_name in sorted(available_policies()):
            assert_lanes_match_vector(insts, get_policy(policy_name))


class TestAxes:
    """Arrival, weight, and deadline axes survive batching."""

    @pytest.mark.parametrize("seed", range(8))
    def test_arrival_batches(self, seed):
        insts = [
            with_arrivals(
                uniform_instance(3, 4, seed=seed + j),
                max_release=6,
                seed=900 + seed + j,
            )
            for j in range(5)
        ]
        assert_lanes_match_vector(insts, get_policy("greedy-balance"))

    @pytest.mark.parametrize("seed", range(6))
    def test_weighted_batches(self, seed):
        insts = [
            with_weights(
                bag_instance(3, 4, seed=seed + j), seed=40 + seed + j
            )
            for j in range(5)
        ]
        assert_lanes_match_vector(insts, get_policy("weighted-srpt"))

    @pytest.mark.parametrize("profile", ["loose", "tight"])
    @pytest.mark.parametrize("seed", range(4))
    def test_deadline_batches(self, profile, seed):
        insts = [
            with_deadlines(
                uniform_instance(3, 4, seed=seed + j),
                profile=profile,
                seed=70 + seed + j,
            )
            for j in range(4)
        ]
        assert_lanes_match_vector(
            insts,
            get_policy("edf-waterfill"),
            objectives=("makespan", "tardiness", "deadline-misses"),
        )

    def test_mixed_axis_batch(self):
        """Lanes carrying different axes in the same batch."""
        insts = [
            uniform_instance(3, 4, seed=1),
            with_arrivals(uniform_instance(3, 4, seed=2), max_release=5, seed=2),
            with_weights(bag_instance(4, 3, seed=3), seed=3),
            with_deadlines(uniform_instance(2, 5, seed=4), seed=4),
        ]
        assert_lanes_match_vector(insts, get_policy("greedy-balance"))


class TestMultiResource:
    """k in {2, 3} batches and mixed-k ragged batches."""

    @pytest.mark.parametrize("k", [2, 3])
    @pytest.mark.parametrize(
        "profile", ["independent", "correlated", "anti-correlated"]
    )
    @pytest.mark.parametrize("seed", range(4))
    def test_multires_batches(self, k, profile, seed):
        insts = [
            multi_resource_instance(3, 4, k, profile=profile, seed=seed + j)
            for j in range(4)
        ]
        assert_lanes_match_vector(insts, get_policy("greedy-balance"))

    @pytest.mark.parametrize("seed", range(4))
    def test_mixed_k_batch(self, seed):
        """k=1, k=2, and k=3 lanes sharing one batch stay bit-faithful."""
        insts = [
            uniform_instance(3, 4, seed=seed),
            multi_resource_instance(4, 3, 2, seed=seed),
            multi_resource_instance(2, 5, 3, seed=seed),
            with_resources(uniform_instance(3, 3, seed=seed), 2, seed=seed),
        ]
        assert_lanes_match_vector(insts, get_policy("greedy-balance"))

    @pytest.mark.parametrize("seed", range(3))
    def test_arrival_multires_batch(self, seed):
        insts = [
            with_resources(
                with_arrivals(
                    uniform_instance(3, 4, seed=seed + j),
                    max_release=6,
                    seed=seed + j,
                ),
                2,
                profile="correlated",
                seed=seed + j,
            )
            for j in range(4)
        ]
        assert_lanes_match_vector(insts, get_policy("greedy-balance"))


class TestRaggedBatches:
    """Mixed processor counts, queue lengths, and makespans."""

    @pytest.mark.parametrize("seed", range(6))
    def test_mixed_shapes(self, seed):
        insts = [
            uniform_instance(2, 2, seed=seed),
            ragged_instance(4, (1, 6), seed=seed),
            bag_instance(7, 3, seed=seed),
            uniform_instance(3, 9, seed=seed),  # the long-makespan lane
            general_size_instance(5, 2, seed=seed),
        ]
        result = assert_lanes_match_vector(insts, get_policy("greedy-balance"))
        # Early-terminating lanes ride along: the batch runs exactly as
        # many shared steps as its slowest lane.
        assert result.steps == int(result.makespans.max())
        assert result.lane_steps == int(result.makespans.sum())

    def test_single_lane_batch(self):
        """B=1 degenerates to one vector run."""
        inst = bag_instance(4, 6, seed=5)
        result = assert_lanes_match_vector([inst], get_policy("round-robin"))
        assert result.lanes == 1
        assert result.steps == int(result.makespans[0])


class TestExactAgreement:
    """Batched lanes against the exact Fraction backend."""

    @pytest.mark.parametrize("k", [1, 2, 3])
    @pytest.mark.parametrize("seed", range(5))
    def test_makespans_match_exact(self, k, seed):
        if k == 1:
            insts = [uniform_instance(3, 3, seed=seed + j) for j in range(3)]
        else:
            insts = [
                multi_resource_instance(3, 3, k, seed=seed + j)
                for j in range(3)
            ]
        policy = get_policy("greedy-balance")
        result = run_batch(insts, policy)
        exact = ExactBackend()
        for b, inst in enumerate(insts):
            ref = exact.run(inst, policy, record_shares=False)
            assert int(result.makespans[b]) == ref.makespan, (k, seed, b)

    @pytest.mark.parametrize("seed", range(3))
    def test_arrival_makespans_match_exact(self, seed):
        insts = [
            with_arrivals(
                uniform_instance(3, 3, seed=seed + j),
                max_release=5,
                seed=300 + seed + j,
            )
            for j in range(3)
        ]
        policy = get_policy("round-robin")
        result = run_batch(insts, policy)
        exact = ExactBackend()
        for b, inst in enumerate(insts):
            ref = exact.run(inst, policy, record_shares=False)
            assert int(result.makespans[b]) == ref.makespan
