"""SIM bench: the many-core substrate (Section 1's motivating system).

Reproduces the policy-comparison experiment on synthetic I/O workloads
and measures engine throughput (steps simulated per benchmark run) on
a 16-core mixed workload."""

from repro.algorithms import GreedyBalance
from repro.experiments import get_experiment
from repro.generators import make_io_workload
from repro.simulation import run_workload


def test_simulator_throughput(benchmark, record_result):
    record_result(get_experiment("SIM").run(num_cores=8, seeds=(0, 1, 2)))

    tasks = make_io_workload(16, seed=13)
    policy = GreedyBalance()

    def run() -> int:
        return run_workload(tasks, policy, unit_split=True).makespan

    assert benchmark(run) > 0


def test_simulator_throughput_vector_backend(benchmark):
    """Same workload through the NumPy float64 backend."""
    tasks = make_io_workload(16, seed=13)
    policy = GreedyBalance()
    expected = run_workload(tasks, policy, unit_split=True).makespan

    def run() -> int:
        return run_workload(
            tasks, policy, unit_split=True, backend="vector"
        ).makespan

    assert benchmark(run) == expected
