"""ORDER bench: sequencing experiment + local-search evaluation loop gate.

Two claims are gated here:

1. the ORDER experiment reproduces (strictly positive fixed-vs-
   optimized gap on the hardness gadgets, identity sequencer
   bit-identical), and
2. the local-search *evaluation loop* -- the hot path of the improver
   -- runs on the vectorized float64 backend fast enough to matter:
   at campaign scale (m=32) the vector evaluation loop must beat
   exact ``Fraction`` re-evaluation by at least ``MIN_EVAL_SPEEDUP``.
   If this gate fails, budgeted search silently becomes unusable for
   anything but toy instances.

Results land in ``BENCH_sequencing.json`` (summarized by
``crsharing bench-report``).
"""

import time

from repro.experiments import get_experiment
from repro.generators import bag_instance
from repro.sequencing import LocalSearchSequencer

#: The vector evaluation loop must beat exact Fraction re-evaluation
#: by at least this factor on the campaign-scale instance.
MIN_EVAL_SPEEDUP = 5.0

#: Evaluations per timing pass (kept modest; the gate is a ratio).
EVAL_BUDGET = 30


def test_order_experiment(record_result):
    record_result(get_experiment("ORDER").run(seeds=(0, 1, 2)))


def test_local_search_gantt_throughput(benchmark):
    """pytest-benchmark timing of one budgeted search at m=8."""
    inst = bag_instance(8, 6, seed=0)
    seq = LocalSearchSequencer(budget=20, restarts=1, seed=0)

    def search():
        return seq.sequence(inst).total_jobs

    assert benchmark(search) == 48


def _time_search(backend: str, inst) -> tuple[float, int]:
    seq = LocalSearchSequencer(
        backend=backend, budget=EVAL_BUDGET, restarts=1, seed=0
    )
    t0 = time.perf_counter()
    seq.sequence(inst)
    elapsed = time.perf_counter() - t0
    return elapsed, int(seq.last_stats["evaluations"])


def test_vector_evaluation_loop_speedup(results_dir):
    """The hot path must stay vectorized: vector >> exact at m=32."""
    from conftest import write_bench_store

    inst = bag_instance(32, 8, seed=1)
    vector_s, vector_evals = _time_search("vector", inst)
    exact_s, exact_evals = _time_search("exact", inst)
    assert vector_evals == exact_evals  # identical seeded move streams
    speedup = exact_s / vector_s
    write_bench_store(
        results_dir,
        "sequencing",
        [
            {
                "m": inst.num_processors,
                "jobs": inst.total_jobs,
                "evaluations": vector_evals,
                "vector_seconds": round(vector_s, 4),
                "exact_seconds": round(exact_s, 4),
                "eval_speedup": round(speedup, 2),
                "evals_per_second": round(vector_evals / vector_s, 1),
            }
        ],
    )
    assert speedup >= MIN_EVAL_SPEEDUP, (vector_s, exact_s)
