"""Shared helpers for the benchmark suite.

Every bench (one per paper figure/theorem, see DESIGN.md section 3):

1. runs the corresponding experiment once, asserting its ``verdict``
   (the machine-checked statement that the paper's claim reproduces);
2. writes the paper-style rows to ``benchmarks/results/<ID>.txt`` and
   ``.csv`` (pytest captures stdout, so files are the reliable channel
   -- EXPERIMENTS.md quotes them);
3. times the experiment's computational kernel with pytest-benchmark.

Run: ``pytest benchmarks/ --benchmark-only``
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.runner import ExperimentResult

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_result(results_dir):
    """Persist an experiment result and assert its verdict."""

    def _record(result: ExperimentResult) -> ExperimentResult:
        (results_dir / f"{result.experiment}.txt").write_text(result.to_text() + "\n")
        result.to_csv(results_dir / f"{result.experiment}.csv")
        assert result.verdict in (True, None), (
            f"{result.experiment} failed to reproduce the paper's claim:\n"
            f"{result.to_text()}"
        )
        return result

    return _record
