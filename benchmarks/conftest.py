"""Shared helpers for the benchmark suite.

Every bench (one per paper figure/theorem, see DESIGN.md section 3):

1. runs the corresponding experiment once, asserting its ``verdict``
   (the machine-checked statement that the paper's claim reproduces);
2. writes the paper-style rows to ``benchmarks/results/<ID>.txt`` and
   ``.csv`` (pytest captures stdout, so files are the reliable channel
   -- EXPERIMENTS.md quotes them) *and* a timestamped
   ``BENCH_<ID>.json`` store, so every bench feeds the cross-PR
   results trajectory that ``crsharing bench-report`` summarizes;
3. times the experiment's computational kernel with pytest-benchmark.

Run: ``pytest benchmarks/ --benchmark-only``
"""

from __future__ import annotations

import json
from datetime import datetime, timezone
from pathlib import Path

import pytest

from repro.experiments.runner import ExperimentResult

RESULTS_DIR = Path(__file__).parent / "results"


def utc_stamp() -> str:
    """ISO-8601 UTC timestamp for the BENCH_*.json stores."""
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def write_bench_store(
    results_dir: Path, name: str, rows: list, **extra
) -> Path:
    """Write one timestamped ``BENCH_<name>.json`` result store."""
    path = results_dir / f"BENCH_{name}.json"
    payload = {
        "benchmark": name,
        "generated_at": utc_stamp(),
        "rows": rows,
        **extra,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_result(results_dir):
    """Persist an experiment result (txt/csv/json) and assert its verdict."""

    def _record(result: ExperimentResult) -> ExperimentResult:
        (results_dir / f"{result.experiment}.txt").write_text(result.to_text() + "\n")
        result.to_csv(results_dir / f"{result.experiment}.csv")
        write_bench_store(
            results_dir,
            result.experiment,
            result.rows,
            title=result.title,
            params=result.params,
            verdict=result.verdict,
        )
        assert result.verdict in (True, None), (
            f"{result.experiment} failed to reproduce the paper's claim:\n"
            f"{result.to_text()}"
        )
        return result

    return _record
