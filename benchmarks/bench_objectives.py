"""FLOW / DEADLINE bench: objective-layer experiments + campaign timing.

Reproduces the two objective-axis experiments (verdicts: the tuned
policies beat round-robin under their objective) and times an
objective-evaluating vector campaign -- the online ObjectiveRecorder
path must stay cheap relative to the plain makespan campaign.
"""

from repro.backends.batch import BatchRunner, make_campaign_instances
from repro.experiments import get_experiment

#: Online objective accounting may cost at most this factor in
#: campaign wall time vs the plain makespan-only run.
OVERHEAD_FACTOR = 2.0


def test_flow_experiment(record_result):
    record_result(get_experiment("FLOW").run(count=6))


def test_deadline_experiment(record_result):
    record_result(get_experiment("DEADLINE").run(count=6))


def test_objective_campaign_timing(benchmark):
    instances = make_campaign_instances(
        20, 8, 8, seed=0, weights_profile="skewed", deadline_profile="mixed"
    )
    runner = BatchRunner(
        policy="weighted-srpt",
        backend="vector",
        workers=1,
        objectives=("weighted-flow", "tardiness"),
    )

    def campaign() -> int:
        return len(runner.run(instances).rows)

    assert benchmark(campaign) == 20


def test_objective_recorder_overhead(results_dir):
    """One timed pass: objective-evaluating campaign vs plain campaign."""
    import time

    from conftest import write_bench_store

    instances = make_campaign_instances(
        30, 8, 8, seed=1, weights_profile="skewed", deadline_profile="mixed"
    )
    plain = BatchRunner(policy="weighted-srpt", backend="vector", workers=1)
    objective = BatchRunner(
        policy="weighted-srpt",
        backend="vector",
        workers=1,
        objectives=("weighted-flow", "tardiness", "deadline-misses"),
    )
    t0 = time.perf_counter()
    plain.run(instances)
    plain_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    objective.run(instances)
    objective_s = time.perf_counter() - t0
    factor = objective_s / plain_s
    write_bench_store(
        results_dir,
        "objective_overhead",
        [
            {
                "instances": len(instances),
                "plain_seconds": round(plain_s, 4),
                "objective_seconds": round(objective_s, 4),
                "factor": round(factor, 3),
            }
        ],
    )
    assert factor <= OVERHEAD_FACTOR, (plain_s, objective_s)
