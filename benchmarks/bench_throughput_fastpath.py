"""THRU bench: exact-Fraction vs integer-grid execution throughput.

The HPC-guide pattern: correctness first (the exact simulator is the
source of truth and the theorems' verifier), then an optimized path
validated against it.  This bench quantifies what the integer-grid
fast path buys on a bulk-sweep-sized instance; the tests in
``tests/algorithms/test_fastpath.py`` pin down bit-for-bit equality.
"""

from repro.algorithms import GreedyBalance, greedy_balance_makespan
from repro.backends import VectorBackend
from repro.generators import uniform_instance

INSTANCE = uniform_instance(8, 120, seed=0)


def test_exact_fraction_path(benchmark):
    policy = GreedyBalance()
    expected = greedy_balance_makespan(INSTANCE)

    def run() -> int:
        return policy.run(INSTANCE).makespan

    assert benchmark(run) == expected


def test_integer_grid_fastpath(benchmark):
    expected = GreedyBalance().run(INSTANCE).makespan

    def run() -> int:
        return greedy_balance_makespan(INSTANCE)

    assert benchmark(run) == expected


def test_vector_backend_path(benchmark):
    """The float64 backend on the same sweep-sized instance (general
    alternative to the policy-specific integer fast path)."""
    policy = GreedyBalance()
    backend = VectorBackend()
    expected = greedy_balance_makespan(INSTANCE)

    def run() -> int:
        return backend.run(INSTANCE, policy, record_shares=False).makespan

    assert benchmark(run) == expected


def test_write_throughput_store(results_dir):
    """Record the three paths' throughput into the BENCH_*.json
    trajectory (one timed run each; the pytest-benchmark figures above
    stay the precise measurement)."""
    import time

    from conftest import write_bench_store

    policy = GreedyBalance()
    rows = []
    for name, run in (
        ("exact-fraction", lambda: policy.run(INSTANCE).makespan),
        ("integer-grid", lambda: greedy_balance_makespan(INSTANCE)),
        (
            "vector-backend",
            lambda: VectorBackend()
            .run(INSTANCE, policy, record_shares=False)
            .makespan,
        ),
    ):
        t0 = time.perf_counter()
        makespan = run()
        elapsed = time.perf_counter() - t0
        rows.append(
            {
                "path": name,
                "makespan": makespan,
                "steps_per_s": round(makespan / elapsed, 1),
            }
        )
    write_bench_store(results_dir, "throughput_fastpath", rows)
