"""THM3 bench: RoundRobin's 2-approximation on random instances.

Reproduces the random-sweep verdict (ratio <= 2 against exact optima)
and times the policy on a wide random instance."""

from repro.algorithms import RoundRobin
from repro.experiments import get_experiment
from repro.generators import uniform_instance


def test_thm3_roundrobin_random(benchmark, record_result):
    record_result(
        get_experiment("THM3").run(
            configs=((2, 4), (2, 8), (3, 3), (4, 2)), seeds=(0, 1, 2, 3, 4)
        )
    )

    instance = uniform_instance(16, 40, seed=1)
    policy = RoundRobin()

    def run() -> int:
        return policy.run(instance).makespan

    assert benchmark(run) >= 40
