"""THM5 bench: the m=2 exact dynamic program.

Reproduces the optimality + O(n^2)-scaling experiment and times the DP
on a 200-job-per-processor instance (the paper's headline polynomial
algorithm)."""

from repro.algorithms import opt_res_assignment
from repro.experiments import get_experiment
from repro.generators import uniform_instance


def test_thm5_opt2(benchmark, record_result):
    record_result(
        get_experiment("THM5").run(
            check_sizes=(2, 3, 4, 5),
            scale_sizes=(50, 100, 200, 400),
            seeds=(0, 1, 2),
            repeats=1,
        )
    )

    instance = uniform_instance(2, 200, seed=7)

    def solve() -> int:
        return opt_res_assignment(instance).makespan

    makespan = benchmark(solve)
    assert makespan >= 200
