"""Batched evaluation engine gate: N instances per array program.

Two claims are gated here:

1. **Local-search throughput** -- with ``batch_lanes > 1`` the
   local-search sequencer evaluates entire neighborhoods through one
   :class:`~repro.backends.batched.BatchVectorRuntime` array program
   per step, and at campaign scale (m=32) that batched evaluation
   loop must beat the single-instance vector path by at least
   ``MIN_BATCHED_SPEEDUP``.  If this gate fails, batching has
   regressed into per-lane dispatch and the engine no longer pays for
   its complexity.
2. **Bit-consistency** -- the batched evaluations must return exactly
   the objective values the single-instance vector path returns, lane
   for lane (the batched engine's padding and masking are designed to
   be bit-transparent; ``tests/backends/test_batched_crosscheck.py``
   covers the fine-grained cases, this bench re-asserts it at gate
   scale).

The store also records raw batched-steps/s against single-instance
vector steps/s at m in {8, 32}, the series the throughput trajectory
tracks across PRs.  Results land in ``BENCH_batched_evals.json``
(summarized by ``crsharing bench-report``).
"""

import time

from repro.algorithms import resolve_policy
from repro.backends import VectorBackend, run_batch
from repro.generators import bag_instance
from repro.sequencing import LocalSearchSequencer

#: The batched local-search evaluation loop must beat the sequential
#: single-instance vector loop by at least this factor at m=32
#: (measured headroom ~12x on a quiet machine).
MIN_BATCHED_SPEEDUP = 10.0

#: Candidate evaluations per timing pass.
EVAL_BUDGET = 192

#: Lanes per batched kernel call in the gated search.
BATCH_LANES = 64

#: Timing repeats per configuration (interleaved best-of; the gate is
#: a ratio on a shared runner, so single samples are far too noisy and
#: back-to-back passes would let a load spike hit one side only).
REPEATS = 5


def _search_rate(inst, *, batch_lanes: int) -> tuple[float, int]:
    """evals/s (and evaluation count) of one budgeted search."""
    seq = LocalSearchSequencer(
        budget=EVAL_BUDGET, restarts=1, seed=0, batch_lanes=batch_lanes
    )
    seq.sequence(inst)
    return (
        float(seq.last_stats["evals_per_second"]),
        int(seq.last_stats["evaluations"]),
    )


def _best_search_rates(inst) -> tuple[float, float, int]:
    """Interleaved best-of-``REPEATS`` (single, batched) evals/s."""
    best_single = best_batched = 0.0
    evals_single = evals_batched = 0
    for _ in range(REPEATS):
        rate, evals_single = _search_rate(inst, batch_lanes=1)
        best_single = max(best_single, rate)
        rate, evals_batched = _search_rate(inst, batch_lanes=BATCH_LANES)
        best_batched = max(best_batched, rate)
    assert evals_single == evals_batched  # same budget, both exhausted
    return best_single, best_batched, evals_batched


def _steps_per_second(insts, policy) -> float:
    """Best-of-``REPEATS`` batched lane-steps/s over one instance batch."""
    best = 0.0
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        result = run_batch(insts, policy)
        elapsed = time.perf_counter() - t0
        best = max(best, result.lane_steps / elapsed)
    return best


def _vector_steps_per_second(insts, policy) -> float:
    """Best-of-``REPEATS`` single-instance vector steps/s, same work."""
    backend = VectorBackend()
    best = 0.0
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        steps = 0
        for inst in insts:
            steps += backend.run(inst, policy, record_shares=False).makespan
        elapsed = time.perf_counter() - t0
        best = max(best, steps / elapsed)
    return best


def test_batched_results_match_vector_lane_for_lane():
    """Gate-scale bit-consistency: batched == per-instance vector."""
    policy = resolve_policy("greedy-balance")
    backend = VectorBackend()
    insts = [bag_instance(32, 8, seed=s) for s in range(8)]
    result = run_batch(insts, policy, objectives=("makespan",))
    for b, inst in enumerate(insts):
        ref = backend.run(
            inst, policy, record_shares=False, objectives=("makespan",)
        )
        assert int(result.makespans[b]) == ref.makespan
        assert (
            result.objective_values["makespan"][b]
            == ref.objective_values["makespan"]
        )


def test_batched_evaluation_speedup(results_dir):
    """The >=MIN_BATCHED_SPEEDUP local-search evals/s gate at m=32."""
    from conftest import write_bench_store

    inst = bag_instance(32, 8, seed=1)
    single_rate, batched_rate, batched_evals = _best_search_rates(inst)
    speedup = batched_rate / single_rate

    policy = resolve_policy("greedy-balance")
    steps_rows = []
    for m in (8, 32):
        insts = [bag_instance(m, 8, seed=100 + s) for s in range(BATCH_LANES)]
        steps_rows.append(
            {
                "m": m,
                "lanes": len(insts),
                "batched_steps_per_second": round(
                    _steps_per_second(insts, policy), 1
                ),
                "vector_steps_per_second": round(
                    _vector_steps_per_second(insts, policy), 1
                ),
            }
        )

    write_bench_store(
        results_dir,
        "batched_evals",
        [
            {
                "m": inst.num_processors,
                "jobs": inst.total_jobs,
                "evaluations": batched_evals,
                "batch_lanes": BATCH_LANES,
                "single_evals_per_second": round(single_rate, 1),
                "batched_evals_per_second": round(batched_rate, 1),
                "eval_speedup": round(speedup, 2),
                "evals_per_second": round(batched_rate, 1),
            }
        ],
        steps_series=steps_rows,
    )
    assert speedup >= MIN_BATCHED_SPEEDUP, (single_rate, batched_rate)
