"""FIG5 bench: GreedyBalance's tight worst case (Theorem 8).

Reproduces the Figure 5 block-family sweep (GB = (2m-1) steps/block vs
the m-steps/block diagonal witness; ratio -> 2 - 1/m) and times
GreedyBalance on a long block chain."""

from repro.algorithms import GreedyBalance
from repro.experiments import get_experiment
from repro.generators import greedy_balance_adversarial


def test_fig5_greedybalance_worstcase(benchmark, record_result):
    record_result(
        get_experiment("FIG5").run(
            ms=(2, 3, 4, 5), block_counts=(2, 5, 10, 20, 40)
        )
    )

    instance = greedy_balance_adversarial(4, 25)
    policy = GreedyBalance()

    def run() -> int:
        return policy.run(instance).makespan

    assert benchmark(run) == 7 * 25
