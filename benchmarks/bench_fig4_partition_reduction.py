"""FIG4 bench: the Theorem 4 NP-hardness gadget.

Reproduces the YES <=> makespan-4 biconditional over random Partition
instances and times the exact solve of one gadget (the fixed-m
configuration search with domination pruning)."""

from repro.algorithms import opt_res_assignment_general
from repro.experiments import get_experiment
from repro.reductions import random_yes_instance, reduction_instance


def test_fig4_partition_reduction(benchmark, record_result):
    record_result(get_experiment("FIG4").run(sizes=(3, 4, 5), seeds=(0, 1, 2)))

    partition, _ = random_yes_instance(4, seed=42)
    gadget = reduction_instance(partition)

    def solve() -> int:
        return opt_res_assignment_general(gadget).makespan

    assert benchmark(solve) == 4
