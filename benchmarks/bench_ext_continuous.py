"""CONT bench: the continuous-time variant (Section 9 outlook).

Reproduces the fluid-vs-discrete experiment and times the event-driven
fluid GreedyBalance on a mid-size instance (exact rational event
times)."""

from repro.core import continuous_greedy_balance
from repro.experiments import get_experiment
from repro.generators import uniform_instance


def test_continuous(benchmark, record_result):
    record_result(get_experiment("CONT").run())

    instance = uniform_instance(4, 10, seed=21)

    def run():
        fluid = continuous_greedy_balance(instance)
        return fluid.makespan

    assert benchmark(run) > 0
