"""FIG2 bench: the Lemma 1 normalization transform.

Reproduces Figure 2 (verdict: 2b nested, 2c not, repairable) and times
``make_nice`` on a schedule with many crossings."""

from repro.algorithms import LargestRequirementFirst
from repro.core import make_nice
from repro.core.properties import is_nice
from repro.experiments import get_experiment
from repro.generators import uniform_instance


def test_fig2_lemma1_transform(benchmark, record_result):
    record_result(get_experiment("FIG2").run())

    messy = LargestRequirementFirst().run(uniform_instance(3, 6, seed=5))

    def transform():
        return make_nice(messy)

    nice = benchmark(transform)
    assert is_nice(nice)
    assert nice.makespan <= messy.makespan
