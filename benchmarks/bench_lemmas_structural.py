"""LEM bench: structural lemmas (Obs 2, Lemma 2, Props 1/2, Lemmas 5/6).

Reproduces the structural sweep and times the full property check
battery on one balanced schedule."""

from repro.algorithms import GreedyBalance
from repro.core import SchedulingGraph
from repro.core.properties import check_proposition_1, check_proposition_2
from repro.experiments import get_experiment
from repro.generators import uniform_instance


def test_lemmas_structural(benchmark, record_result):
    record_result(
        get_experiment("LEM").run(
            configs=((2, 4), (3, 3), (4, 4), (5, 3)), seeds=(0, 1, 2)
        )
    )

    schedule = GreedyBalance().run(uniform_instance(5, 12, seed=2))

    def checks() -> bool:
        graph = SchedulingGraph(schedule)
        return (
            graph.check_observation_2()
            and graph.check_lemma_2()
            and check_proposition_1(schedule)
            and check_proposition_2(schedule)
        )

    assert benchmark(checks)
