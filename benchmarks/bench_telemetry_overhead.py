"""TELEMETRY bench: the observability layer's overhead gates.

The telemetry subsystem promises two numbers (ISSUE 6's acceptance
criteria), measured here against the plain uninstrumented kernel:

* **disabled** (no session installed -- the default for every library
  call): <= 2% overhead.  The kernel pays one module-global read per
  *run*; nothing per step.
* **enabled** (full tracing + metrics session): <= 25% overhead.  Every
  step phase is timed into histograms and emits span records, so some
  cost is inherent -- the gate keeps it bounded enough that tracing a
  production-size campaign stays practical.

Shared CI boxes make wall-clock ratios unusable at the 2% scale
(identical code measures anywhere from 0.6x to 1.7x run-to-run under
contention), so the *gates* compare a deterministic work proxy: total
function-call counts from :mod:`cProfile`.  The interpreter executes
the same calls regardless of machine load, the disabled path is
code-identical to the baseline (the counts match exactly), and every
line of instrumentation is pure Python, so its cost shows up in the
count.  Wall-clock steps/s is still measured (best-of-N, interleaved)
and reported per case as informational columns.  The store lands in
``BENCH_telemetry.json`` with ``overhead_disabled_pct`` /
``overhead_enabled_pct`` highlight keys (``crsharing bench-report``
surfaces them).
"""

import cProfile
import gc
import pstats
import time

from repro.algorithms import GreedyBalance
from repro.core import simulate
from repro.generators import uniform_instance
from repro.telemetry import TelemetrySession, use_session

#: Moderate exact-arithmetic sizes: big enough that per-step costs
#: dominate fixed per-run costs, small enough for CI.
CASES = [(4, 40), (16, 20)]

#: Disabled-path gate: <= 2% extra work with no session installed.
#: The measured path differs from baseline by one module-global read
#: per run, so the call counts should be *identical*; the 2% headroom
#: only allows for future per-run (never per-step) bookkeeping.
DISABLED_GATE = 1.02

#: Enabled-path gate: <= 25% extra work with full tracing + metrics.
ENABLED_GATE = 1.25

#: Interleaved wall-clock repeats for the informational steps/s columns.
REPEATS = 5


def _call_count(fn):
    """Total function calls (Python + builtin) executed by ``fn()``."""
    profile = cProfile.Profile()
    profile.enable()
    fn()
    profile.disable()
    return sum(stat[0] for stat in pstats.Stats(profile).stats.values())


def _timed_run(instance, policy, session):
    gc.collect()  # pay collection *between* samples, not inside one
    gc.disable()
    try:
        t0 = time.perf_counter()
        if session is None:
            schedule = simulate(instance, policy)
        else:
            with use_session(session):
                schedule = simulate(instance, policy)
        elapsed = time.perf_counter() - t0
    finally:
        gc.enable()
    return elapsed, schedule.makespan


def _best_steps_per_second(instance, policy):
    """Best-of-N steps/s per variant, interleaved (B-D-E, B-D-E, ...)
    so machine-load drift hits every variant equally.  Informational
    only -- the pass/fail gates use deterministic call counts."""
    best = {"baseline": float("inf"), "disabled": float("inf"), "enabled": float("inf")}
    makespans = set()
    _timed_run(instance, policy, None)  # warm caches before timing
    for _ in range(REPEATS):
        for variant, session in (
            ("baseline", None),
            ("disabled", None),
            ("enabled", TelemetrySession()),
        ):
            elapsed, makespan = _timed_run(instance, policy, session)
            best[variant] = min(best[variant], elapsed)
            makespans.add(makespan)
    assert len(makespans) == 1, "telemetry changed a makespan"
    makespan = makespans.pop()
    return makespan, {k: makespan / v for k, v in best.items()}


def test_telemetry_overhead(results_dir):
    policy = GreedyBalance()
    rows = []
    worst_disabled = worst_enabled = 1.0
    for m, n in CASES:
        instance = uniform_instance(m, n, seed=7)
        simulate(instance, policy)  # warm before profiling
        base_calls = _call_count(lambda: simulate(instance, policy))
        off_calls = _call_count(lambda: simulate(instance, policy))
        session = TelemetrySession()

        def _traced():
            with use_session(session):
                simulate(instance, policy)

        on_calls = _call_count(_traced)
        disabled_ratio = off_calls / base_calls
        enabled_ratio = on_calls / base_calls
        worst_disabled = max(worst_disabled, disabled_ratio)
        worst_enabled = max(worst_enabled, enabled_ratio)
        makespan, sps = _best_steps_per_second(instance, policy)
        rows.append(
            {
                "m": m,
                "n": n,
                "makespan": makespan,
                "baseline_calls": base_calls,
                "disabled_calls": off_calls,
                "enabled_calls": on_calls,
                "baseline_steps_per_s": round(sps["baseline"], 1),
                "disabled_steps_per_s": round(sps["disabled"], 1),
                "enabled_steps_per_s": round(sps["enabled"], 1),
                "overhead_disabled_pct": round((disabled_ratio - 1) * 100, 2),
                "overhead_enabled_pct": round((enabled_ratio - 1) * 100, 2),
            }
        )
    from conftest import write_bench_store

    write_bench_store(results_dir, "telemetry", rows)
    assert worst_disabled <= DISABLED_GATE, rows
    assert worst_enabled <= ENABLED_GATE, rows


def test_traced_run_is_bit_identical():
    """Sanity companion to the overhead gates: the traced schedule
    equals the untraced one share-for-share (telemetry never touches
    arithmetic)."""
    instance = uniform_instance(8, 12, seed=3)
    policy = GreedyBalance()
    plain = simulate(instance, policy)
    with use_session(TelemetrySession()):
        traced = simulate(instance, policy)
    assert plain.makespan == traced.makespan
    assert [s.shares for s in plain.steps] == [s.shares for s in traced.steps]
