"""THM7 bench: the (2 - 1/m) guarantee for balanced schedules.

Reproduces the certificate-bound experiment and times the full
guarantee pipeline: GreedyBalance + hypergraph + Lemma 5/6 bounds."""

from fractions import Fraction

from repro.algorithms import GreedyBalance
from repro.core import SchedulingGraph, theorem7_reference
from repro.experiments import get_experiment
from repro.generators import uniform_instance


def test_thm7_balanced_bound(benchmark, record_result):
    record_result(
        get_experiment("THM7").run(ms=(2, 3, 4, 5), seeds=(0, 1, 2, 3, 4))
    )

    instance = uniform_instance(6, 20, seed=11)
    policy = GreedyBalance()

    def pipeline() -> bool:
        sched = policy.run(instance)
        graph = SchedulingGraph(sched)
        return sched.makespan <= (2 - Fraction(1, 6)) * theorem7_reference(graph)

    assert benchmark(pipeline)
