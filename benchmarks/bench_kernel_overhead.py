"""OVERHEAD bench: unified kernel vs the frozen pre-refactor loop.

The kernel refactor replaced three hand-inlined step loops with one
observer-driven kernel (``repro.core.kernel``).  Abstraction must not
cost throughput: this bench times the kernel-based
:func:`repro.core.simulate` against ``_legacy_simulate`` -- a frozen,
byte-faithful copy of the pre-refactor exact loop -- on the same
instances, and gates that the kernel is within 10% (the acceptance
bound of the refactor issue).

It also guards ``BENCH_backend_speedup.json``: the recorded vector
speedup at m=256 must still clear the 20x gate, so the kernel's
per-step dispatch cannot silently erode the float path either (CI
regenerates that file immediately before this bench runs).
"""

import json
import time
from fractions import Fraction
from pathlib import Path

from repro.algorithms import GreedyBalance
from repro.core import Schedule, simulate
from repro.core.simulator import default_step_limit
from repro.core.state import ExecState
from repro.exceptions import SimulationLimitError
from repro.generators import uniform_instance

RESULTS = Path(__file__).parent / "results"

#: Moderate sizes: large enough that per-step dispatch overhead would
#: show, small enough that Fraction arithmetic doesn't drown the
#: signal entirely.
CASES = [(4, 40), (16, 20), (64, 8)]

#: Allowed kernel slowdown vs the frozen loop (the issue's 10% gate)
#: plus a small timing-noise allowance on top of best-of-N timing.
GATE = 0.90
REPEATS = 5


def _legacy_simulate(instance, policy, *, max_steps=None, stall_limit=3):
    """Frozen copy of the pre-kernel ``simulate`` (seed revision).

    Do not modernize: this is the measurement baseline.
    """
    from repro.core.numerics import ZERO, to_frac
    from repro.core.simulator import check_share_vector

    limit = default_step_limit(instance) if max_steps is None else max_steps
    state = ExecState(instance)
    rows: list[tuple[Fraction, ...]] = []
    stalled = 0

    while not state.all_done:
        if state.t >= limit:
            raise SimulationLimitError("legacy loop exceeded limit")
        raw = policy(state)
        shares = tuple(to_frac(x) for x in raw)
        check_share_vector(instance, state.t, shares)
        outcome = state.apply(shares)
        rows.append(shares)
        if not outcome.completed and all(p == ZERO for p in outcome.processed):
            stalled += 1
            if stalled >= stall_limit:
                raise SimulationLimitError("legacy loop stalled")
        else:
            stalled = 0
    return Schedule(instance, rows, validate=True, trim=True)


def _best_steps_per_second(fn, instance, policy):
    best = float("inf")
    makespan = None
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        schedule = fn(instance, policy)
        elapsed = time.perf_counter() - t0
        best = min(best, elapsed)
        makespan = schedule.makespan
    return makespan, makespan / best


def test_kernel_overhead(results_dir):
    policy = GreedyBalance()
    rows = []
    for m, n in CASES:
        instance = uniform_instance(m, n, seed=7)
        legacy_makespan, legacy_sps = _best_steps_per_second(
            _legacy_simulate, instance, policy
        )
        kernel_makespan, kernel_sps = _best_steps_per_second(
            simulate, instance, policy
        )
        assert kernel_makespan == legacy_makespan
        rows.append(
            {
                "m": m,
                "n": n,
                "makespan": kernel_makespan,
                "legacy_steps_per_s": round(legacy_sps, 1),
                "kernel_steps_per_s": round(kernel_sps, 1),
                "kernel_vs_legacy": round(kernel_sps / legacy_sps, 3),
            }
        )
    from conftest import write_bench_store

    write_bench_store(results_dir, "kernel_overhead", rows)
    worst = min(row["kernel_vs_legacy"] for row in rows)
    assert worst >= GATE, rows


def test_backend_speedup_not_regressed(results_dir):
    """The recorded vector-backend speedup must still clear its gate
    (CI runs bench_backend_speedup.py first, refreshing the file)."""
    path = results_dir / "BENCH_backend_speedup.json"
    data = json.loads(path.read_text())
    at_256 = next(row for row in data["rows"] if row["m"] == 256)
    assert at_256["speedup"] >= 20, data["rows"]
