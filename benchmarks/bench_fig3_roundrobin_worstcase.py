"""FIG3 bench: RoundRobin's worst-case family (Theorem 3 lower bound).

Reproduces the Figure 3 sweep (RR = 2n vs OPT = n+1, ratio -> 2) and
times RoundRobin itself on a large member of the family."""

from repro.algorithms import RoundRobin
from repro.experiments import get_experiment
from repro.generators import round_robin_adversarial


def test_fig3_roundrobin_worstcase(benchmark, record_result):
    record_result(
        get_experiment("FIG3").run(sizes=(5, 10, 25, 50, 100, 200))
    )

    instance = round_robin_adversarial(150)
    policy = RoundRobin()

    def run() -> int:
        return policy.run(instance).makespan

    makespan = benchmark(run)
    assert makespan == 300
