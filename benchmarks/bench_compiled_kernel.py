"""Compiled hot-kernel gate: the JIT-fused driver must pay for itself.

Two claims are gated here:

1. **Throughput** -- with numba installed, the fused
   ``compiled="on"`` driver (water-fill + step loop in one nopython
   region) must beat the uncompiled per-step vector engine by at
   least ``MIN_COMPILED_SPEEDUP`` in steps/s at both m=8 and m=32.
   The timing interleaves the two engines best-of-``REPEATS`` and a
   discarded warm-up pass triggers (and so excludes) JIT compilation.
2. **Agreement** -- at gate scale, the fused driver's makespans must
   equal the per-step engine's exactly (the fine-grained 1e-9
   crosscheck matrix lives in ``tests/kernels``; this bench
   re-asserts the headline invariant on the timed workload).

Without numba the speedup gate skips -- the fused driver then runs
interpreted, which exists for coverage, not speed -- but the
``BENCH_compiled_kernel.json`` store is still written so the cross-PR
trajectory (``crsharing bench-report``) records the configuration.
"""

import time

import pytest

from repro.algorithms import resolve_policy
from repro.backends import VectorBackend
from repro.generators import bag_instance
from repro.kernels import NUMBA_AVAILABLE, numba_version

#: The fused compiled driver must beat the uncompiled per-step vector
#: engine by at least this factor in steps/s (gated only when numba is
#: installed; measured headroom is far larger once the JIT is warm).
MIN_COMPILED_SPEEDUP = 5.0

#: Instances per timed batch (enough steps to swamp timer noise).
LANES = 24

#: Timing repeats per engine (interleaved best-of; the gate is a ratio
#: on a shared machine, so back-to-back passes would let a load spike
#: hit one side only).
REPEATS = 5


def _steps_per_second(insts, policy, *, compiled) -> float:
    """Best-of-``REPEATS`` steps/s of one engine over the workload."""
    backend = VectorBackend()
    best = 0.0
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        steps = 0
        for inst in insts:
            steps += backend.run(
                inst, policy, record_shares=False, compiled=compiled
            ).makespan
        elapsed = time.perf_counter() - t0
        best = max(best, steps / elapsed)
    return best


def test_compiled_matches_vector_at_gate_scale():
    """The timed workload itself: fused makespans == per-step makespans."""
    policy = resolve_policy("greedy-balance")
    backend = VectorBackend()
    for m in (8, 32):
        for s in range(4):
            inst = bag_instance(m, 8, seed=s)
            on = backend.run(
                inst, policy, record_shares=False, compiled="on"
            )
            off = backend.run(
                inst, policy, record_shares=False, compiled="off"
            )
            assert on.makespan == off.makespan, (m, s)


def test_compiled_kernel_speedup(results_dir):
    """The >=MIN_COMPILED_SPEEDUP steps/s gate at m in {8, 32}."""
    from conftest import write_bench_store

    policy = resolve_policy("greedy-balance")
    rows = []
    for m in (8, 32):
        insts = [bag_instance(m, 8, seed=200 + s) for s in range(LANES)]
        # Warm-up pass: triggers (and excludes) JIT compilation, and
        # primes caches identically for the uncompiled side.
        backend = VectorBackend()
        for inst in insts[:2]:
            backend.run(inst, policy, record_shares=False, compiled="on")
            backend.run(inst, policy, record_shares=False, compiled="off")
        compiled_rate = _steps_per_second(insts, policy, compiled="on")
        vector_rate = _steps_per_second(insts, policy, compiled="off")
        rows.append(
            {
                "m": m,
                "lanes": LANES,
                "numba": numba_version(),
                "compiled_steps_per_s": round(compiled_rate, 1),
                "vector_steps_per_s": round(vector_rate, 1),
                "speedup": round(compiled_rate / vector_rate, 2),
            }
        )

    write_bench_store(
        results_dir,
        "compiled_kernel",
        rows,
        numba_available=NUMBA_AVAILABLE,
        gate=MIN_COMPILED_SPEEDUP,
    )
    if not NUMBA_AVAILABLE:
        pytest.skip(
            "numba not installed: the fused driver ran interpreted, so "
            "the speedup gate does not apply (store written)"
        )
    for row in rows:
        assert row["speedup"] >= MIN_COMPILED_SPEEDUP, row
