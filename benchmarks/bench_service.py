"""SERVICE bench: streaming throughput, latency, and the incremental gate.

Two BENCH series plus one gate, all on seeded Poisson workloads:

1. *sustained throughput* -- jobs per wall-clock second the always-on
   :class:`~repro.service.SchedulingService` sustains end to end
   (submissions through drain) at several arrival rates;
2. *scheduling latency* -- the per-arrival admission+placement latency
   percentiles (p50/p99) the service reports; and
3. the **incremental re-scheduling gate**: on a 500-job streaming
   workload, event-driven incremental advancement must beat the
   honest from-scratch baseline (replay the full admitted history on
   every event) by at least :data:`MIN_INCREMENTAL_SPEEDUP`.  The
   baseline is measured with an early exit -- once it has already
   burned the speedup budget the bound is proven and the remaining
   events are skipped -- so a regression fails fast instead of
   stalling CI.

Results land in ``BENCH_service.json`` (summarized by
``crsharing bench-report``).
"""

import time

from repro.service import ArrivalEvent, PoissonStream, SchedulingService

#: Incremental must beat from-scratch by at least this factor on the
#: 500-job streaming workload (the tentpole claim of the service layer).
MIN_INCREMENTAL_SPEEDUP = 5.0

#: The gate workload: 500 Poisson arrivals across 16 logical queues.
GATE_JOBS = 500
GATE_RATE = 4.0
GATE_QUEUES = 16

#: Arrival rates of the sustained-throughput series.
THROUGHPUT_RATES = (1.0, 2.0, 4.0)
THROUGHPUT_JOBS = 300


def _run_incremental(rate: float, count: int, queues: int):
    stream = PoissonStream(rate=rate, count=count, seed=0)
    service = SchedulingService(mode="incremental", max_queues=queues)
    t0 = time.perf_counter()
    service.run_stream(stream)
    elapsed = time.perf_counter() - t0
    return elapsed, service.report()


def test_service_smoke_throughput(benchmark):
    """pytest-benchmark timing of one short streaming session."""
    stream = PoissonStream(rate=2.0, count=60, seed=3)

    def session():
        service = SchedulingService(mode="incremental", max_queues=8)
        service.run_stream(stream)
        return service.report().completed

    assert benchmark(session) == 60


def test_service_streaming_series_and_gate(results_dir):
    """Both BENCH series plus the >= 5x incremental-vs-scratch gate."""
    from conftest import write_bench_store

    rows = []
    for rate in THROUGHPUT_RATES:
        elapsed, report = _run_incremental(rate, THROUGHPUT_JOBS, 8)
        assert report.dropped_events == 0
        assert report.completed == THROUGHPUT_JOBS
        pct = report.latency_percentiles
        rows.append(
            {
                "series": "throughput",
                "rate": rate,
                "jobs": THROUGHPUT_JOBS,
                "seconds": round(elapsed, 3),
                "jobs_per_second": round(report.completed / elapsed, 1),
                "utilization": round(report.utilization, 4),
                "latency_p50_ms": round(pct["p50"] * 1e3, 3),
                "latency_p99_ms": round(pct["p99"] * 1e3, 3),
            }
        )

    # The gate: time the full incremental session, then replay the
    # same workload in from-scratch mode with an early exit once the
    # speedup bound is already proven.
    inc_seconds, inc_report = _run_incremental(
        GATE_RATE, GATE_JOBS, GATE_QUEUES
    )
    assert inc_report.completed == GATE_JOBS
    budget = MIN_INCREMENTAL_SPEEDUP * inc_seconds
    events = list(PoissonStream(rate=GATE_RATE, count=GATE_JOBS, seed=0))
    scratch = SchedulingService(mode="from-scratch", max_queues=GATE_QUEUES)
    t0 = time.perf_counter()
    replayed = 0
    for event in events:
        scratch.submit(ArrivalEvent(event.time, event.job))
        replayed += 1
        if time.perf_counter() - t0 > budget:
            break
    else:
        scratch.drain()
    scratch_seconds = time.perf_counter() - t0
    finished = replayed == len(events)
    # When the baseline was cut short, scratch_seconds / inc_seconds
    # is a *lower bound* on the true speedup (it did less work in
    # more time); when it finished, it is the exact figure.
    speedup = scratch_seconds / inc_seconds
    rows.append(
        {
            "series": "incremental-gate",
            "jobs": GATE_JOBS,
            "rate": GATE_RATE,
            "queues": GATE_QUEUES,
            "incremental_seconds": round(inc_seconds, 3),
            "from_scratch_seconds": round(scratch_seconds, 3),
            "from_scratch_events_replayed": replayed,
            "from_scratch_finished": finished,
            "speedup": round(speedup, 2),
        }
    )
    write_bench_store(
        results_dir,
        "service",
        rows,
        verdict=bool(speedup >= MIN_INCREMENTAL_SPEEDUP),
    )
    assert speedup >= MIN_INCREMENTAL_SPEEDUP, (
        f"incremental re-scheduling only {speedup:.1f}x faster than "
        f"from-scratch (required {MIN_INCREMENTAL_SPEEDUP}x; baseline "
        f"replayed {replayed}/{len(events)} events in "
        f"{scratch_seconds:.1f}s vs {inc_seconds:.1f}s incremental)"
    )
