"""GEN bench: arbitrary job sizes (Section 9 conjecture).

Reproduces the general-size guarantee experiment and times the MILP
exact oracle on one general-size instance."""

from repro.algorithms import milp_makespan
from repro.experiments import get_experiment
from repro.generators import general_size_instance


def test_gen_general_sizes(benchmark, record_result):
    record_result(
        get_experiment("GEN").run(
            configs=((2, 2), (2, 3), (3, 2)), seeds=(0, 1, 2, 3)
        )
    )

    instance = general_size_instance(2, 3, grid=10, max_size=3, seed=9)

    def solve() -> int:
        return milp_makespan(instance, upper=instance.total_jobs * 3 + 1)

    assert benchmark(solve) >= 1
