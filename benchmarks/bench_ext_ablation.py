"""ABL bench: GreedyBalance priority-rule ablation.

Reproduces the ablation experiment (balance direction is the
load-bearing ingredient of the 2 - 1/m guarantee) and times the
inverted-tie-break variant on the adversarial family."""

from repro.experiments import get_experiment
from repro.experiments.ablation import GreedyBalanceSmallTie
from repro.generators import greedy_balance_adversarial


def test_ablation(benchmark, record_result):
    record_result(
        get_experiment("ABL").run(ms=(2, 3, 4), blocks=6, seeds=(0, 1, 2, 3))
    )

    instance = greedy_balance_adversarial(3, 10)
    policy = GreedyBalanceSmallTie()

    def run() -> int:
        return policy.run(instance).makespan

    assert benchmark(run) > 0
