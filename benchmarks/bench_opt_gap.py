"""OPTGAP bench: certified-gap experiment + branch-and-bound pruning gate.

Two claims are gated here:

1. the OPTGAP experiment reproduces (every certificate proved, the
   planted Theorem 4 gadget certifies at exactly 4, local-search gaps
   never exceed fixed-order gaps, and the empirical Theorem 5/6 ratios
   respect the paper's bounds), and
2. the branch-and-bound certifier actually *prunes*: across a seeded
   family of n = 7 instances (m = 2, queues of 4 and 3 jobs) the
   number of expanded nodes must stay at or below
   ``MAX_NODE_FRACTION`` of the n! = 5040 leaf orders.  Without the
   prefix bounds, symmetry breaking, and prefix memoization the search
   degenerates into enumeration and certification stops scaling past
   toy sizes.

The rows record both denominators honestly: ``n!`` (the gate the
pruning claim is stated against) and the smaller per-queue order space
``prod(n_i!) = 144`` that the search actually ranges over.  Results
land in ``BENCH_opt_gap.json`` (summarized by
``crsharing bench-report``).
"""

import math
import random
from fractions import Fraction

from repro.algorithms import branch_and_bound_order, order_space_size
from repro.core import Instance
from repro.experiments import get_experiment

#: Hard ceiling on expanded nodes as a fraction of the n! leaf orders.
MAX_NODE_FRACTION = 0.20

#: Seeded n = 7 family: m = 2 with queues of 4 and 3 unit jobs.
QUEUE_SIZES = (4, 3)
GRID = 7
SEEDS = range(10)


def _n7_instance(seed: int) -> Instance:
    rng = random.Random(0xBE7 + seed)
    return Instance(
        [
            [Fraction(rng.randint(1, GRID), GRID) for _ in range(n)]
            for n in QUEUE_SIZES
        ]
    )


def test_optgap_experiment(record_result):
    record_result(get_experiment("OPTGAP").run(seeds=(0, 1), budget=80))


def test_branch_and_bound_prunes(results_dir):
    """Certification at n = 7 must expand <= 20% of the n! leaves."""
    from conftest import write_bench_store

    total_jobs = sum(QUEUE_SIZES)
    factorial_leaves = math.factorial(total_jobs)
    rows = []
    for seed in SEEDS:
        inst = _n7_instance(seed)
        result = branch_and_bound_order(inst)
        space = order_space_size(inst)
        rows.append(
            {
                "seed": seed,
                "n": total_jobs,
                "nodes": result.nodes,
                "pruned": result.pruned,
                "leaf_evaluations": result.leaf_evaluations,
                "order_space": space,
                "factorial_leaves": factorial_leaves,
                "node_fraction": round(result.nodes / factorial_leaves, 5),
                "space_fraction": round(result.nodes / space, 4),
                "proved": result.proved,
            }
        )
    write_bench_store(
        results_dir,
        "opt_gap",
        rows,
        gate={
            "max_node_fraction": MAX_NODE_FRACTION,
            "denominator": f"{total_jobs}! = {factorial_leaves}",
        },
    )
    assert all(row["proved"] for row in rows)
    # The family must include genuinely searched cases -- a gate that
    # only ever sees root-closed proofs gates nothing.
    assert any(row["nodes"] > 0 for row in rows)
    worst = max(row["node_fraction"] for row in rows)
    assert worst <= MAX_NODE_FRACTION, rows


def test_certify_search_throughput(benchmark):
    """pytest-benchmark timing of the hardest seeded n = 7 case."""
    hard = max(SEEDS, key=lambda s: branch_and_bound_order(_n7_instance(s)).nodes)
    inst = _n7_instance(hard)

    def certify():
        result = branch_and_bound_order(inst)
        assert result.proved
        return result.value

    benchmark(certify)
