"""FIG1 bench: scheduling hypergraph construction (Section 3.2).

Reproduces Figure 1 (verdict) and times hypergraph construction +
component analysis on a large schedule -- the kernel behind the
Lemma 5/6 certificates."""

from repro.algorithms import GreedyBalance
from repro.core import SchedulingGraph
from repro.experiments import get_experiment
from repro.generators import uniform_instance


def test_fig1_hypergraph(benchmark, record_result):
    record_result(get_experiment("FIG1").run())

    schedule = GreedyBalance().run(uniform_instance(8, 60, seed=0))

    def build() -> int:
        graph = SchedulingGraph(schedule)
        assert graph.check_observation_2()
        return graph.num_components

    components = benchmark(build)
    assert components >= 1
