"""SPEEDUP bench: exact vs vector backend throughput across m.

Records the throughput of both backends on uniform random instances
at m in {8, 64, 256} and the resulting speedup factor into
``benchmarks/results/BENCH_backend_speedup.json``, so the perf
trajectory of the float path is tracked across PRs.  The acceptance
gate asserts the vector backend is at least 20x faster at m=256.

The exact backend is timed on a *smaller* step budget per run (one
run) because a single Fraction simulation at m=256 already takes
seconds; the vector backend is timed over several runs and averaged.
Both figures are steps-per-second, so the ratio is scale-free.
"""

import time
from pathlib import Path

from repro.algorithms import GreedyBalance
from repro.backends import ExactBackend, VectorBackend
from repro.generators import uniform_instance

RESULTS = Path(__file__).parent / "results"

#: (m, jobs per processor) -- constant total steps per processor so
#: exact stays timeable at m=256 while vector gets enough steps to
#: amortize startup.
CASES = [(8, 32), (64, 12), (256, 6)]


def _time_once(backend, instance, policy):
    t0 = time.perf_counter()
    result = backend.run(instance, policy, record_shares=False)
    return result.makespan, time.perf_counter() - t0


def _steps_per_second(backend, instance, policy, *, repeats):
    makespan, best = _time_once(backend, instance, policy)
    for _ in range(repeats - 1):
        _, elapsed = _time_once(backend, instance, policy)
        best = min(best, elapsed)
    return makespan, makespan / best


def test_backend_speedup(results_dir):
    policy = GreedyBalance()
    exact = ExactBackend()
    vector = VectorBackend()
    rows = []
    for m, n in CASES:
        instance = uniform_instance(m, n, seed=0)
        exact_makespan, exact_sps = _steps_per_second(
            exact, instance, policy, repeats=1
        )
        vector_makespan, vector_sps = _steps_per_second(
            vector, instance, policy, repeats=3
        )
        assert vector_makespan == exact_makespan
        rows.append(
            {
                "m": m,
                "n": n,
                "makespan": exact_makespan,
                "exact_steps_per_s": round(exact_sps, 1),
                "vector_steps_per_s": round(vector_sps, 1),
                "speedup": round(vector_sps / exact_sps, 1),
            }
        )
    from conftest import write_bench_store

    write_bench_store(results_dir, "backend_speedup", rows)
    at_256 = next(row for row in rows if row["m"] == 256)
    assert at_256["speedup"] >= 20, rows
