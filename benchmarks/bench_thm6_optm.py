"""THM6 bench: the fixed-m exact configuration search.

Reproduces the optimality + state-count experiment and times the
search on a 3-processor instance (polynomial for fixed m, Theorem 6)."""

from repro.algorithms import opt_res_assignment_general
from repro.experiments import get_experiment
from repro.generators import uniform_instance


def test_thm6_optm(benchmark, record_result):
    record_result(
        get_experiment("THM6").run(
            configs=((2, 3), (2, 5), (3, 2), (3, 3), (3, 4)), seeds=(0, 1, 2)
        )
    )

    instance = uniform_instance(3, 4, seed=3)

    def solve() -> int:
        return opt_res_assignment_general(instance).makespan

    assert benchmark(solve) >= 4
