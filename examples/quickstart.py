#!/usr/bin/env python
"""Quickstart: model a tiny shared-bandwidth system and schedule it.

Covers the core public API in ~60 lines:

* build an :class:`~repro.Instance` (jobs = per-processor phases with
  bandwidth requirements),
* run the two analyzed policies (RoundRobin, GreedyBalance),
* compute the exact optimum (m=2 dynamic program, Theorem 5),
* inspect the schedule, its hypergraph, and quality metrics.

Run:  python examples/quickstart.py
"""

from fractions import Fraction

from repro import GreedyBalance, Instance, RoundRobin, opt_res_assignment
from repro.analysis import compute_metrics
from repro.core import SchedulingGraph
from repro.viz import render_components, render_instance, render_schedule


def main() -> None:
    # Two cores behind one bus.  Core 0 runs a bursty task (heavy IO,
    # then light compute); core 1 streams at half bandwidth.  Values
    # are resource requirements in [0, 1]; strings parse exactly.
    instance = Instance.from_requirements(
        [
            ["0.9", "0.1", "0.8", "0.2"],
            ["0.5", "0.5", "0.5", "0.5"],
        ]
    )
    print("instance (requirements in percent):")
    print(render_instance(instance))

    # --- online policies ---------------------------------------------
    for policy in (RoundRobin(), GreedyBalance()):
        schedule = policy.run(instance)
        metrics = compute_metrics(schedule)
        print(f"\n{policy.name}: makespan={schedule.makespan}")
        print(render_schedule(schedule))
        print(f"metrics: {metrics.as_row()}")

    # --- exact optimum (Theorem 5: O(n^2) for two processors) --------
    result = opt_res_assignment(instance)
    print(f"\noptimal makespan: {result.makespan}")
    print(render_schedule(result.schedule))

    # --- structure: the scheduling hypergraph (Section 3.2) ----------
    graph = SchedulingGraph(result.schedule)
    print("\nhypergraph components of the optimal schedule:")
    print(render_components(graph))

    # GreedyBalance is guaranteed within 2 - 1/m = 1.5 of optimal here.
    gb = GreedyBalance().run(instance)
    ratio = Fraction(gb.makespan, result.makespan)
    print(f"\nGreedyBalance/OPT = {ratio} (guarantee: 3/2)")
    assert ratio <= Fraction(3, 2)


if __name__ == "__main__":
    main()
