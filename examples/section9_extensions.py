#!/usr/bin/env python
"""Beyond the paper: probing the Section 9 open directions.

The paper's outlook names three extensions; this example walks through
the reproductions of each:

1. **arbitrary job sizes** -- run the policies against the MILP exact
   optimum on a general-size instance (the conjectured transfer of the
   guarantees);
2. **continuous time** -- the event-driven fluid GreedyBalance, its
   unrounded lower bound, and the forced-idle example showing the
   continuous variant stays hard;
3. **ablation** -- which ingredient of GreedyBalance the (2 - 1/m)
   guarantee actually needs (balance direction, not the tie-break).

Run:  python examples/section9_extensions.py
"""

from fractions import Fraction

from repro import GreedyBalance, Instance, milp_makespan
from repro.core import continuous_greedy_balance, continuous_lower_bound
from repro.experiments.ablation import GreedyBalanceSmallTie
from repro.core.properties import is_balanced
from repro.generators import general_size_instance, greedy_balance_adversarial
from repro.viz import render_instance


def general_sizes() -> None:
    print("=" * 64)
    print("1. Arbitrary job sizes (Section 9 conjecture)")
    print("=" * 64)
    instance = general_size_instance(2, 3, grid=10, max_size=3, seed=0)
    print(render_instance(instance))
    gb = GreedyBalance().run(instance)
    opt = milp_makespan(instance, upper=gb.makespan)
    ratio = Fraction(gb.makespan, opt)
    print(f"GreedyBalance = {gb.makespan}, exact OPT (MILP) = {opt}")
    print(f"ratio {float(ratio):.3f} vs the unit-size guarantee 1.5 "
          f"-> the bound transfers on this instance")


def continuous_time() -> None:
    print()
    print("=" * 64)
    print("2. Continuous time (Section 9 outlook)")
    print("=" * 64)
    hard = Instance.from_requirements([["1/10", "1"], ["1/10", "1"]])
    print(render_instance(hard))
    fluid = continuous_greedy_balance(hard)
    fluid.validate()
    lb = continuous_lower_bound(hard)
    print(f"continuous lower bound: {lb} = {float(lb)}")
    print(f"fluid GreedyBalance makespan: {fluid.makespan}")
    print("the 1/10-cap prefixes strand 4/5 of the bus for a full time "
          "unit -> the gap\nsurvives the removal of the discrete grid; "
          "continuous CRSharing stays hard")
    print("\nfluid pieces (start, end, rates):")
    for piece in fluid.pieces:
        rates = ", ".join(str(r) for r in piece.rates)
        print(f"  [{piece.start}, {piece.end}]  rates = ({rates})")


def ablation() -> None:
    print()
    print("=" * 64)
    print("3. Which ingredient earns the guarantee?")
    print("=" * 64)
    instance = greedy_balance_adversarial(3, 4)
    paper = GreedyBalance().run(instance)
    flipped = GreedyBalanceSmallTie().run(instance)
    print(f"Theorem 8 family (m=3, 4 blocks):")
    print(f"  paper GreedyBalance (large-tie-break): {paper.makespan} steps")
    print(f"  inverted tie-break:                    {flipped.makespan} steps")
    print(f"  both balanced: {is_balanced(paper)} / {is_balanced(flipped)}")
    print("the adversarial family targets the tie-break, but Theorem 7 only "
          "needs balance:\nany balanced water-fill variant keeps the "
          "(2 - 1/m) guarantee")


if __name__ == "__main__":
    general_sizes()
    continuous_time()
    ablation()
