#!/usr/bin/env python
"""The paper's motivating scenario: an I/O-bound many-core system.

Section 1 of the paper argues that on many-core chips sharing one data
bus, *bandwidth assignment* -- not core count -- decides completion
time for I/O-intensive workloads.  This example builds a synthetic
8-core workload (streaming writers, bursty solvers, light compute),
runs it through the many-core engine under several policies, and
compares makespans, bus utilization and core stall time.

Run:  python examples/manycore_io_bandwidth.py
"""

from repro.algorithms import (
    FewestRemainingJobsFirst,
    GreedyBalance,
    GreedyFinishJobs,
    RoundRobin,
)
from repro.generators import make_io_workload, tasks_to_instance
from repro.core import best_lower_bound
from repro.simulation import run_workload


def main() -> None:
    tasks = make_io_workload(num_cores=8, seed=7)
    print("workload:")
    for task in tasks:
        phases = ", ".join(
            f"{float(p.bandwidth) * 100:.0f}%x{p.duration}" for p in task.phases
        )
        print(f"  {task.name:<12} {phases}")

    # The bus can move at most 1 unit of data per step: total work is a
    # hard floor on the makespan no matter how many cores you add.
    instance = tasks_to_instance(tasks, unit_split=True)
    print(
        f"\ntotal bus work = {float(instance.total_work()):.2f} steps "
        f"(lower bound {best_lower_bound(instance)}); cores = 8"
    )

    policies = [
        GreedyBalance(),
        RoundRobin(),
        GreedyFinishJobs(),
        FewestRemainingJobsFirst(),
    ]
    print(f"\n{'policy':<28} {'makespan':>8} {'bus util':>9} {'stalls':>7}")
    best = None
    for policy in policies:
        trace = run_workload(tasks, policy, unit_split=True)
        stalls = sum(cs.stall_steps for cs in trace.core_summaries)
        print(
            f"{policy.name:<28} {trace.makespan:>8} "
            f"{float(trace.bus_utilization) * 100:>8.1f}% {stalls:>7}"
        )
        if best is None or trace.makespan < best[1]:
            best = (policy.name, trace.makespan, trace)

    name, makespan, trace = best
    print(f"\nbest policy: {name} ({makespan} steps); per-core summary:")
    print(trace.summary_table())


if __name__ == "__main__":
    main()
