#!/usr/bin/env python
"""NP-hardness live: the Theorem 4 reduction from Partition.

Builds the CRSharing gadget for a YES and a NO Partition instance and
shows the 4-vs-5 makespan gap that makes the problem NP-hard (and,
per Corollary 1, inapproximable below 5/4).

Run:  python examples/partition_hardness.py
"""

from repro import brute_force_makespan
from repro.reductions import (
    INAPPROXIMABILITY_GAP,
    PartitionInstance,
    reduction_instance,
    solve_partition_dp,
    yes_witness_schedule,
)
from repro.viz import render_instance, render_schedule


def show(partition: PartitionInstance, label: str) -> int:
    print(f"\n--- {label}: values = {partition.values} "
          f"(total {partition.total}, target {partition.half}) ---")
    witness = solve_partition_dp(partition)
    print(f"Partition answer: {'YES, subset ' + str(witness) if witness else 'NO'}")

    gadget = reduction_instance(partition)
    print("gadget (3 unit jobs per processor, requirements in percent):")
    print(render_instance(gadget))

    opt = brute_force_makespan(gadget)
    print(f"exact optimal makespan of the gadget: {opt}")
    if witness is not None:
        schedule = yes_witness_schedule(partition, witness)
        print(f"Figure 4a witness schedule achieves {schedule.makespan}:")
        print(render_schedule(schedule))
    return opt


def main() -> None:
    # YES: {3, 5, 2} splits as {3, 2} vs {5}.
    yes_opt = show(PartitionInstance([3, 5, 2]), "YES-instance")
    # NO: {3, 3, 3, 1} has even total 10 but no subset sums to 5.
    no_opt = show(PartitionInstance([3, 3, 3, 1]), "NO-instance")

    print(f"\nYES gadget OPT = {yes_opt}, NO gadget OPT = {no_opt}")
    print(
        f"gap = {no_opt}/{yes_opt} >= {INAPPROXIMABILITY_GAP} "
        f"=> approximating CRSharing below 5/4 is NP-hard (Corollary 1)"
    )
    assert yes_opt == 4 and no_opt >= 5


if __name__ == "__main__":
    main()
