#!/usr/bin/env python
"""Exact algorithms: the m=2 dynamic program and the fixed-m search.

Demonstrates the paper's two exact solvers and the oracle machinery:

* Algorithm 1 (Theorem 5): the ``O(n^2)`` dynamic program for two
  processors, plus the priority-queue variant that visits fewer cells;
* Algorithm 2 (Theorem 6): the configuration search for fixed m, with
  its per-round state counts after domination pruning;
* cross-validation: brute force and the HiGHS MILP agree.

Run:  python examples/exact_solver_demo.py
"""

from repro import (
    GreedyBalance,
    brute_force_makespan,
    milp_makespan,
    opt_res_assignment,
    opt_res_assignment_general,
    opt_res_assignment_pq,
)
from repro.generators import uniform_instance
from repro.viz import render_instance, render_schedule


def two_processor_demo() -> None:
    print("=" * 60)
    print("Algorithm 1: exact optimum for m = 2 (Theorem 5)")
    print("=" * 60)
    instance = uniform_instance(2, 8, seed=3)
    print(render_instance(instance))

    table = opt_res_assignment(instance)
    pq = opt_res_assignment_pq(instance)
    print(
        f"\nDP optimum: {table.makespan} "
        f"(table variant expanded {table.cells_expanded} cells, "
        f"PQ variant {pq.cells_expanded})"
    )
    print(render_schedule(table.schedule))

    greedy = GreedyBalance().run(instance)
    print(
        f"\nGreedyBalance: {greedy.makespan} "
        f"(guarantee: <= 1.5 x {table.makespan} = {1.5 * table.makespan:.1f})"
    )


def fixed_m_demo() -> None:
    print()
    print("=" * 60)
    print("Algorithm 2: exact optimum for fixed m (Theorem 6)")
    print("=" * 60)
    instance = uniform_instance(3, 3, seed=11)
    print(render_instance(instance))

    result = opt_res_assignment_general(instance)
    print(f"\noptimum: {result.makespan}")
    print(f"configurations kept per round: {result.stats}")
    print(render_schedule(result.schedule))

    # Three independent oracles must agree.
    bf = brute_force_makespan(instance)
    milp = milp_makespan(instance)
    print(f"\ncross-check: config-search={result.makespan}  "
          f"brute-force={bf}  MILP={milp}")
    assert result.makespan == bf == milp


if __name__ == "__main__":
    two_processor_demo()
    fixed_m_demo()
