"""Walkthrough: two shared resources (bus + memory bandwidth).

The paper's model has ``m`` cores sharing *one* continuously divisible
resource.  Real many-cores contend for several at once -- the data bus
AND the memory controller, say -- which is the multi-resource
extension (after *Scheduling with Many Shared Resources*, Maack et
al.): every job carries a requirement vector ``r in [0,1]^k``, each
resource has capacity 1 per step, and a job's speed is set by its
*bottleneck* resource (``min_l s_l / r_l``).

This demo builds a small k=2 workload where the two resources are
anti-correlated (bus-heavy phases barely touch memory and vice
versa), runs GreedyBalance through the exact backend, renders an
ASCII share plot per resource, and cross-validates the vectorized
(k, m) float path against the exact run.

Run from the repo root::

    PYTHONPATH=src python examples/multi_resource_demo.py
"""

from repro.algorithms import get_policy
from repro.analysis import verify_share_rows
from repro.backends import cross_validate
from repro.core import Instance, Job
from repro.viz import render_instance

#: Four cores, phases labeled (bus%, memory%): streaming cores hammer
#: the bus, the stencil cores hammer memory, and the mixed core needs
#: a bit of both -- so no single resource tells the whole story.
WORKLOAD = Instance(
    [
        [Job(["9/10", "1/10"]), Job(["8/10", "1/10"]), Job(["1/10", "2/10"])],
        [Job(["1/10", "9/10"]), Job(["2/10", "8/10"]), Job(["1/10", "7/10"])],
        [Job(["5/10", "5/10"]), Job(["4/10", "6/10"])],
        [Job(["7/10", "2/10"]), Job(["1/10", "8/10"])],
    ]
)

RESOURCE_NAMES = ("bus", "mem")


def share_bar(value: float, width: int = 20) -> str:
    """Render one share in [0, 1] as a fixed-width ASCII bar."""
    filled = round(value * width)
    return "#" * filled + "." * (width - filled)


def ascii_share_plot(result, resource: int) -> str:
    """Per-step total utilization of one resource, as bar rows."""
    lines = [f"resource {resource} ({RESOURCE_NAMES[resource]}):"]
    for t, matrix in enumerate(result.shares):
        total = float(sum(matrix[resource]))
        lines.append(f"  t={t}  |{share_bar(total)}| {total:.2f}")
    return "\n".join(lines)


def main() -> None:
    print("k=2 workload (labels are bus%/mem% per phase):")
    print(render_instance(WORKLOAD))
    print()
    print(f"resources: k={WORKLOAD.num_resources}")
    for lane, name in enumerate(RESOURCE_NAMES):
        print(
            f"  congestion W_{lane} ({name}) = "
            f"{float(WORKLOAD.resource_work(lane)):.2f}"
        )
    print(f"lower bound (max_l ceil(W_l)): {WORKLOAD.makespan_lower_bound()}")
    print()

    policy = get_policy("greedy-balance")
    result = policy.run_backend(WORKLOAD, backend="exact")
    print(f"GreedyBalance makespan (exact backend): {result.makespan}")
    print()
    for lane in range(WORKLOAD.num_resources):
        print(ascii_share_plot(result, lane))
        print()

    report = verify_share_rows(WORKLOAD, result.shares)
    print(f"independent verifier accepts the run: {report.ok}")

    check = cross_validate(WORKLOAD, policy)
    print(
        f"exact vs vector (k, m) path: makespans {check.exact_makespan} / "
        f"{check.vector_makespan}, max share deviation "
        f"{check.max_share_deviation:.2e}, ok={check.ok}"
    )


if __name__ == "__main__":
    main()
