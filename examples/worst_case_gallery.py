#!/usr/bin/env python
"""Gallery of the paper's adversarial constructions, rendered to SVG.

Generates the worst-case families of Theorems 3 and 8, runs the
policies they defeat, and writes publication-style SVG figures (Gantt
charts, the Figure 1 hypergraph, and ratio-vs-size line plots) into
``examples/out/``.

Run:  python examples/worst_case_gallery.py
"""

from pathlib import Path

from repro import GreedyBalance, RoundRobin, SchedulingGraph
from repro.algorithms import GreedyFinishJobs, opt_res_assignment
from repro.generators import (
    fig1_instance,
    greedy_balance_adversarial,
    greedy_balance_witness_schedule,
    round_robin_adversarial,
)
from repro.viz import hypergraph_svg, render_schedule, schedule_svg, series_svg

OUT = Path(__file__).parent / "out"


def figure1() -> None:
    instance = fig1_instance()
    schedule = GreedyFinishJobs().run(instance)
    graph = SchedulingGraph(schedule)
    (OUT / "fig1_hypergraph.svg").write_text(hypergraph_svg(graph))
    print(f"fig1: {graph.num_components} components -> fig1_hypergraph.svg")


def round_robin_worst_case() -> None:
    # Small instance for the Gantt; a sweep for the ratio curve.
    instance = round_robin_adversarial(6)
    rr = RoundRobin().run(instance)
    opt = opt_res_assignment(instance).schedule
    (OUT / "fig3_roundrobin.svg").write_text(
        schedule_svg(rr, title="RoundRobin on the Theorem 3 family (n=6)")
    )
    (OUT / "fig3_optimal.svg").write_text(
        schedule_svg(opt, title="Optimal schedule (n=6)")
    )
    print("fig3 gantts written; RoundRobin ASCII:")
    print(render_schedule(rr, max_width=100))

    points = []
    for n in (5, 10, 20, 40, 80, 160):
        inst = round_robin_adversarial(n)
        ratio = RoundRobin().run(inst).makespan / (n + 1)
        points.append((float(n), ratio))
    (OUT / "fig3_ratio.svg").write_text(
        series_svg(
            {"RoundRobin / OPT": points, "limit = 2": [(5, 2.0), (160, 2.0)]},
            title="Theorem 3: RoundRobin ratio -> 2",
            xlabel="jobs per processor (n)",
            ylabel="makespan ratio",
        )
    )
    print("fig3 ratio curve -> fig3_ratio.svg")


def greedy_balance_worst_case() -> None:
    m = 3
    instance = greedy_balance_adversarial(m, 3)
    gb = GreedyBalance().run(instance)
    witness = greedy_balance_witness_schedule(instance, m)
    (OUT / "fig5_greedybalance.svg").write_text(
        schedule_svg(gb, title=f"GreedyBalance on the Theorem 8 family (m={m})")
    )
    (OUT / "fig5_witness.svg").write_text(
        schedule_svg(witness, title="Diagonal witness schedule")
    )
    print(f"fig5: GreedyBalance {gb.makespan} vs witness {witness.makespan}")

    series = {}
    for m in (2, 3, 4):
        points = []
        for blocks in (2, 5, 10, 20):
            inst = greedy_balance_adversarial(m, blocks)
            g = GreedyBalance().run(inst).makespan
            w = greedy_balance_witness_schedule(inst, m).makespan
            points.append((float(blocks), g / w))
        series[f"m={m} (limit {2 - 1 / m:.2f})"] = points
    (OUT / "fig5_ratio.svg").write_text(
        series_svg(
            series,
            title="Theorem 8: GreedyBalance ratio -> 2 - 1/m",
            xlabel="blocks",
            ylabel="makespan ratio",
        )
    )
    print("fig5 ratio curves -> fig5_ratio.svg")


if __name__ == "__main__":
    OUT.mkdir(exist_ok=True)
    figure1()
    round_robin_worst_case()
    greedy_balance_worst_case()
    print(f"\nall figures in {OUT}/")
